//! Sharded streaming execution for the all-pairs traversal passes.
//!
//! The exact §5 metrics (distance distribution, betweenness) run one BFS
//! or Brandes sweep per source. Since PR 2 those sweeps are chunked over
//! sources and merged in fixed chunk order, which makes results
//! thread-count-invariant — but the in-memory route *collects every
//! chunk's partial* before merging, and a betweenness partial is an
//! `O(n)` vector. At 10⁶ nodes, 64 collected partials are half a
//! gigabyte of `f64`s before the merge even starts, and the footprint
//! grows with the shard count, not the worker count.
//!
//! This module fixes the shape, not the math:
//!
//! * **Shards** (`shard_layout`): sources are partitioned into
//!   contiguous shards whose boundaries are a pure function of the
//!   source count and the shard count — never of the worker count (the
//!   invariant `run_chunked` established; [`DEFAULT_SHARDS`] reproduces
//!   its historical layout exactly).
//! * **Streaming reducers** (`run_sharded_fold`): each worker streams
//!   its shard over the shared frozen [`CsrGraph`](dk_graph::CsrGraph)
//!   into compact per-shard state — a distance-histogram, an `O(n)`
//!   betweenness partial, a max-merged eccentricity — and partials fold
//!   into **one** global accumulator in strict shard order
//!   ([`dk_graph::ensemble::run_fold`]). In-flight memory is
//!   `O(workers · n)`; the per-source BFS/Brandes vectors are worker
//!   scratch, never materialized per source.
//! * **Bit-identity**: the in-memory route (`run_sharded`) merges the
//!   same partials, with the same floating-point operations, in the same
//!   shard order — so for any shard count the streamed result is
//!   **bit-identical** to the in-memory one, which stays retained as the
//!   equivalence oracle (`tests/stream_equivalence.rs`, the
//!   `proptests::streamed_equals_in_memory` property).
//! * **Planning** ([`plan`]): the streamed route is selected explicitly
//!   (`Analyzer::shards` / `Analyzer::memory_budget`, CLI `--shards` /
//!   `--memory-budget`) or automatically once the analyzed graph exceeds
//!   [`AUTO_STREAM_NODES`]; a memory budget caps the worker count so the
//!   traversal working set stays under it.
//!
//! This is the Brandes–Pich shape (source partitioning with streaming
//! per-source accumulation) applied to the *exact* passes; the sampled
//! estimator in [`crate::sampled`] rides the same shard executor with
//! pivot sources.

use crate::cache::AnalyzeOptions;
use crate::distance::default_threads;
use std::ops::Range;

/// Default shard count — the historical `run_chunked` chunking (enough
/// shards that work-stealing balances uneven BFS costs, few enough that
/// per-shard setup stays negligible). The default analyzer route uses
/// this layout whether it streams or not, so default results never
/// depend on the route taken.
pub const DEFAULT_SHARDS: usize = 64;

/// Node count above which [`plan`] auto-selects the streamed route
/// (2¹⁷): below it the collected partials fit comfortably in memory;
/// above it they grow past hundreds of megabytes toward the 10⁶-node
/// scale the streaming layer exists for.
pub const AUTO_STREAM_NODES: usize = 1 << 17;

/// Shard layout for `n` sources split `shards` ways: `(length, count)`
/// with every shard `length` sources long except a possibly-short last
/// one. A pure function of `(n, shards)` — never of the worker count —
/// so the floating-point merge tree of a sharded pass is fixed by the
/// shard count alone. `shards` is clamped to `1..=n`.
pub(crate) fn shard_layout(n: u32, shards: usize) -> (u32, u32) {
    let shards = shards.clamp(1, n.max(1) as usize) as u32;
    let len = n.div_ceil(shards).max(1);
    (len, n.div_ceil(len))
}

/// Runs `work` on every shard of `0..n` across `threads` workers and
/// returns the per-shard partials **in shard order** — the in-memory
/// route, `O(shards · |partial|)` resident. Callers that merge partials
/// in the returned order produce bit-identical results for every thread
/// count.
pub(crate) fn run_sharded<A, F>(n: u32, shards: usize, threads: usize, work: F) -> Vec<A>
where
    F: Fn(Range<u32>) -> A + Sync,
    A: Send,
{
    if n == 0 {
        return vec![work(0..0)];
    }
    let (len, count) = shard_layout(n, shards);
    dk_graph::ensemble::run(count as u64, 0, threads, |i, _rng| {
        let lo = i as u32 * len;
        work(lo..(lo + len).min(n))
    })
}

/// As `run_sharded`, but each shard partial folds into `acc` in strict
/// shard order as soon as it is ready — the streaming route,
/// `O(workers · |partial|)` in flight. Fold order and fold operations
/// are exactly those of merging `run_sharded`'s vector front to back,
/// so the two routes are bit-identical at equal shard counts.
pub(crate) fn run_sharded_fold<T, A, F, M>(
    n: u32,
    shards: usize,
    threads: usize,
    work: F,
    mut acc: A,
    fold: M,
) -> A
where
    F: Fn(Range<u32>) -> T + Sync,
    M: Fn(&mut A, T) + Sync,
    T: Send,
    A: Send,
{
    if n == 0 {
        fold(&mut acc, work(0..0));
        return acc;
    }
    let (len, count) = shard_layout(n, shards);
    dk_graph::ensemble::run_fold(
        count as u64,
        0,
        threads,
        |i, _rng| {
            let lo = i as u32 * len;
            work(lo..(lo + len).min(n))
        },
        acc,
        |acc, _i, partial| fold(acc, partial),
    )
}

/// How the traversal-shaped passes of one analyzer run execute. Built by
/// [`plan`]; read back via
/// [`AnalysisCache::exec_plan`](crate::cache::AnalysisCache::exec_plan).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecPlan {
    /// `true` → shard partials stream through `run_sharded_fold`;
    /// `false` → the retained in-memory collect-then-merge route.
    pub streamed: bool,
    /// Source shard count (fixes the merge tree; default
    /// [`DEFAULT_SHARDS`]).
    pub shards: usize,
    /// Worker threads for the traversal passes (the resolved thread
    /// budget, possibly lowered by a memory budget).
    pub workers: usize,
}

/// Route selection policy for the traversal passes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Stream when asked to (`shards`/`memory_budget` set) or when the
    /// analyzed graph exceeds [`AUTO_STREAM_NODES`]; in-memory otherwise.
    #[default]
    Auto,
    /// Force the in-memory route — the equivalence oracle.
    InMemory,
    /// Force the streamed route.
    Streamed,
}

/// Working-set bytes one streaming worker needs for the fused
/// Brandes+distance pass on an `n`-node graph: the `O(n)` betweenness
/// partial (`f64`) plus the BFS scratch (`dist`, `sigma`, `delta`,
/// `order`, queue). The distance histogram is `O(diameter)` — noise.
///
/// This is the per-worker bound the acceptance criterion names: total
/// traversal memory is `workers × per_worker_bytes` plus the
/// route-independent [`fixed_bytes`], never a function of the shard
/// count.
pub fn per_worker_bytes(n: usize) -> u64 {
    // bc 8 + sigma 8 + delta 8 + dist 4 + order 4 + queue 4 = 36 B/node;
    // round up for allocator slack and the histogram. The
    // direction-optimizing BFS scratch adds two n-bit frontier bitmaps
    // (`front_bits`/`next_bits` in
    // [`BfsScratch`](dk_graph::traversal::BfsScratch)) — charge them
    // explicitly so a budget-capped worker count stays an upper bound
    // for the distance-only pass too.
    40 * n as u64 + 2 * (n as u64).div_ceil(8)
}

/// Route-independent bytes every traversal pass holds regardless of the
/// worker count: the shared frozen [`CsrGraph`](dk_graph::CsrGraph)
/// snapshot (`CsrGraph::size_bytes`: `4(n+1) + 8m`) plus the `O(n)`
/// global accumulator the shard partials fold into. A memory budget is
/// charged these up front; only the remainder buys workers.
pub fn fixed_bytes(n: usize, edges: usize) -> u64 {
    let snapshot = 4 * (n as u64 + 1) + 8 * edges as u64;
    let accumulator = 8 * n as u64;
    snapshot + accumulator
}

/// Resolves the execution plan for one analyzer run over an analyzed
/// graph of `n` nodes and `edges` edges, honoring the thread knob in
/// `opts` (`0` = all cores). A `memory_budget` first pays the
/// route-independent [`fixed_bytes`] (snapshot + global accumulator),
/// then lowers the worker count until the per-worker scratch fits the
/// remainder — never below 1 worker, the floor the pass needs to run at
/// all.
pub fn plan(n: usize, edges: usize, opts: &AnalyzeOptions) -> ExecPlan {
    let streamed = match opts.exec {
        ExecMode::InMemory => false,
        ExecMode::Streamed => true,
        ExecMode::Auto => {
            opts.shards.is_some() || opts.memory_budget.is_some() || n > AUTO_STREAM_NODES
        }
    };
    let mut workers = if opts.threads == 0 {
        default_threads()
    } else {
        opts.threads
    };
    if let Some(budget) = opts.memory_budget {
        let scratch = budget.saturating_sub(fixed_bytes(n, edges));
        let fit = scratch / per_worker_bytes(n).max(1);
        workers = workers.min(fit.max(1) as usize);
    }
    ExecPlan {
        streamed,
        shards: opts.shards.unwrap_or(DEFAULT_SHARDS).max(1),
        workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_layout_matches_historical_chunking() {
        // DEFAULT_SHARDS reproduces run_chunked's ceil(n/64) layout
        for n in [1u32, 7, 63, 64, 65, 1000, 12345] {
            let (len, count) = shard_layout(n, DEFAULT_SHARDS);
            let want_len = n.div_ceil(64).max(1);
            assert_eq!(len, want_len, "n = {n}");
            assert_eq!(count, n.div_ceil(want_len), "n = {n}");
            // shards tile 0..n exactly
            assert!((count - 1) * len < n && count * len >= n);
        }
    }

    #[test]
    fn shard_layout_clamps() {
        assert_eq!(shard_layout(5, 0), (5, 1));
        assert_eq!(shard_layout(5, 1), (5, 1));
        assert_eq!(shard_layout(5, 5), (1, 5));
        assert_eq!(shard_layout(5, 99), (1, 5));
        assert_eq!(shard_layout(0, 3), (1, 0));
    }

    #[test]
    fn sharded_and_fold_agree_on_integer_reduction() {
        let work = |r: Range<u32>| r.map(|x| x as u64).sum::<u64>();
        for shards in [1, 2, 7, 100] {
            let collected: u64 = run_sharded(100, shards, 3, work).into_iter().sum();
            let folded = run_sharded_fold(100, shards, 3, work, 0u64, |a, p| *a += p);
            assert_eq!(collected, folded, "shards = {shards}");
            assert_eq!(folded, 4950);
        }
    }

    fn opts_threads(threads: usize) -> AnalyzeOptions {
        AnalyzeOptions {
            threads,
            ..AnalyzeOptions::default()
        }
    }

    #[test]
    fn plan_auto_thresholds() {
        let p = plan(1000, 2000, &opts_threads(1));
        assert!(!p.streamed);
        assert_eq!((p.shards, p.workers), (DEFAULT_SHARDS, 1));
        assert!(plan(AUTO_STREAM_NODES + 1, 0, &opts_threads(1)).streamed);
        assert!(!plan(AUTO_STREAM_NODES, 0, &opts_threads(1)).streamed);
    }

    #[test]
    fn plan_explicit_knobs_force_streaming() {
        let p = plan(
            100,
            200,
            &AnalyzeOptions {
                shards: Some(7),
                ..opts_threads(2)
            },
        );
        assert!(p.streamed);
        assert_eq!(p.shards, 7);
        let p = plan(
            100,
            200,
            &AnalyzeOptions {
                memory_budget: Some(1 << 30),
                ..opts_threads(2)
            },
        );
        assert!(p.streamed);
        assert_eq!(p.workers, 2);
    }

    #[test]
    fn plan_memory_budget_caps_workers_but_never_below_one() {
        let (n, m) = (1_000_000, 2_000_000);
        // the fixed costs (snapshot + accumulator) are charged first:
        // exactly 3 workers' scratch on top of them admits 3 workers...
        let generous = plan(
            n,
            m,
            &AnalyzeOptions {
                memory_budget: Some(fixed_bytes(n, m) + per_worker_bytes(n) * 3),
                ..opts_threads(8)
            },
        );
        assert_eq!(generous.workers, 3);
        // ...while the same budget without the fixed share admits fewer
        let uncharged = plan(
            n,
            m,
            &AnalyzeOptions {
                memory_budget: Some(per_worker_bytes(n) * 3),
                ..opts_threads(8)
            },
        );
        assert!(uncharged.workers < 3);
        let tiny = plan(
            n,
            m,
            &AnalyzeOptions {
                memory_budget: Some(1),
                ..opts_threads(8)
            },
        );
        assert_eq!(tiny.workers, 1);
    }

    #[test]
    fn plan_mode_overrides_win() {
        let streamed_small = plan(
            10,
            20,
            &AnalyzeOptions {
                exec: ExecMode::Streamed,
                ..opts_threads(1)
            },
        );
        assert!(streamed_small.streamed);
        let in_memory_large = plan(
            10_000_000,
            20_000_000,
            &AnalyzeOptions {
                exec: ExecMode::InMemory,
                shards: Some(7),
                ..opts_threads(1)
            },
        );
        assert!(!in_memory_large.streamed);
        assert_eq!(in_memory_large.shards, 7);
    }
}

//! Clustering `C(k)` and mean clustering `C̄` (paper §2, refs \[4, 14\]).
//!
//! The local clustering of a node `v` with degree `k ≥ 2` is the number of
//! links among its neighbors divided by `k(k−1)/2`. `C(k)` averages this
//! over `k`-degree nodes; `C̄` averages over all nodes of degree ≥ 2 (nodes
//! of degree 0/1 have no defined value; including them as zeros is the
//! other common convention — both are exposed, the paper-facing reports use
//! the degree-≥2 mean, matching CAIDA's usage in ref \[20\]).

use dk_graph::{AdjacencyView, Graph};

/// Per-node triangle counts: `t[v]` = number of triangles through `v`.
///
/// Runs in O(Σ_e (deg(u) + deg(v))) via sorted-adjacency merges, generic
/// over [`AdjacencyView`] — the analyzer cache runs the census on its
/// frozen CSR snapshot. Edges are enumerated as `(u, v)` with `v > u`
/// from the sorted neighbor slices; counts are identical either way.
pub fn triangles_per_node<V: AdjacencyView + ?Sized>(g: &V) -> Vec<usize> {
    let n = g.node_count();
    let mut t = vec![0usize; n];
    for u in 0..n as u32 {
        let a = g.neighbors(u);
        for &v in a.iter().filter(|&&v| v > u) {
            // every common neighbor w of (u,v) closes a triangle {u,v,w}
            let b = g.neighbors(v);
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let w = a[i];
                        t[w as usize] += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    // each triangle {u,v,w} was seen from all 3 of its edges, each time
    // crediting the opposite vertex once → every vertex counted exactly
    // once per edge pair = 2×? No: triangle edges (u,v),(u,w),(v,w) credit
    // w, v, u respectively — each vertex exactly once. No correction needed.
    t
}

/// Total number of triangles in the graph.
pub fn triangle_count<V: AdjacencyView + ?Sized>(g: &V) -> usize {
    triangles_per_node(g).iter().sum::<usize>() / 3
}

/// Local clustering coefficient per node; `None` for degree < 2.
pub fn local_clustering(g: &Graph) -> Vec<Option<f64>> {
    local_clustering_from(g, &triangles_per_node(g))
}

/// [`local_clustering`] from precomputed per-node triangle counts — lets
/// the analyzer cache amortize one triangle census across `c_mean`,
/// `c_k`, and `transitivity`.
pub(crate) fn local_clustering_from(g: &Graph, tri: &[usize]) -> Vec<Option<f64>> {
    (0..g.node_count())
        .map(|v| {
            let k = g.degree(v as u32);
            if k < 2 {
                None
            } else {
                Some(tri[v] as f64 / (k as f64 * (k as f64 - 1.0) / 2.0))
            }
        })
        .collect()
}

/// Degree-dependent clustering `C(k)`: mean local clustering of `k`-degree
/// nodes, as `(k, C(k))` pairs for degrees with at least one defined value.
pub fn clustering_by_degree(g: &Graph) -> Vec<(usize, f64)> {
    clustering_by_degree_from(g, &triangles_per_node(g))
}

/// [`clustering_by_degree`] from precomputed triangle counts.
pub(crate) fn clustering_by_degree_from(g: &Graph, tri: &[usize]) -> Vec<(usize, f64)> {
    let local = local_clustering_from(g, tri);
    let kmax = g.max_degree();
    let mut sum = vec![0.0f64; kmax + 1];
    let mut cnt = vec![0usize; kmax + 1];
    for (v, c) in local.iter().enumerate() {
        if let Some(c) = c {
            let k = g.degree(v as u32);
            sum[k] += c;
            cnt[k] += 1;
        }
    }
    (0..=kmax)
        .filter(|&k| cnt[k] > 0)
        .map(|k| (k, sum[k] / cnt[k] as f64))
        .collect()
}

/// Mean clustering `C̄` over nodes of degree ≥ 2 (the paper-facing scalar).
///
/// Returns 0.0 if no node has degree ≥ 2.
pub fn mean_clustering(g: &Graph) -> f64 {
    mean_clustering_from(g, &triangles_per_node(g))
}

/// [`mean_clustering`] from precomputed triangle counts.
pub(crate) fn mean_clustering_from(g: &Graph, tri: &[usize]) -> f64 {
    let local = local_clustering_from(g, tri);
    let (mut sum, mut cnt) = (0.0, 0usize);
    for c in local.into_iter().flatten() {
        sum += c;
        cnt += 1;
    }
    if cnt == 0 {
        0.0
    } else {
        sum / cnt as f64
    }
}

/// Mean clustering counting degree-<2 nodes as zero (alternative
/// convention; exposed for cross-checking against other tools).
pub fn mean_clustering_all_nodes(g: &Graph) -> f64 {
    if g.node_count() == 0 {
        return 0.0;
    }
    let local = local_clustering(g);
    local.iter().map(|c| c.unwrap_or(0.0)).sum::<f64>() / g.node_count() as f64
}

/// Global transitivity: `3 × #triangles / #wedges` — a wedge-weighted
/// alternative to `C̄` (dominated by hubs in heavy-tailed graphs).
pub fn transitivity(g: &Graph) -> f64 {
    transitivity_from(g, &triangles_per_node(g))
}

/// [`transitivity`] from precomputed triangle counts.
pub(crate) fn transitivity_from(g: &Graph, tri: &[usize]) -> f64 {
    let tri = tri.iter().sum::<usize>() / 3;
    let wedges: usize = g
        .nodes()
        .map(|v| {
            let k = g.degree(v);
            k * (k.saturating_sub(1)) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * tri as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn triangle_counts_on_classics() {
        assert_eq!(triangle_count(&builders::complete(4)), 4);
        assert_eq!(triangle_count(&builders::complete(5)), 10);
        assert_eq!(triangle_count(&builders::cycle(5)), 0);
        assert_eq!(triangle_count(&builders::petersen()), 0);
        assert_eq!(triangle_count(&builders::star(6)), 0);
    }

    #[test]
    fn per_node_triangles_in_k4() {
        // K4: each node participates in C(3,2) = 3 triangles.
        let t = triangles_per_node(&builders::complete(4));
        assert_eq!(t, vec![3, 3, 3, 3]);
    }

    #[test]
    fn clustering_of_complete_graph_is_one() {
        let g = builders::complete(6);
        assert!((mean_clustering(&g) - 1.0).abs() < 1e-12);
        assert!((transitivity(&g) - 1.0).abs() < 1e-12);
        for (_, c) in clustering_by_degree(&g) {
            assert!((c - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn clustering_of_triangle_free_graph_is_zero() {
        let g = builders::petersen();
        assert_eq!(mean_clustering(&g), 0.0);
        assert_eq!(transitivity(&g), 0.0);
    }

    #[test]
    fn tree_has_no_defined_clustering_for_leaves() {
        let g = builders::star(4);
        let local = local_clustering(&g);
        assert_eq!(local[0], Some(0.0)); // hub: 0 links among neighbors
        for &leaf_c in &local[1..=4] {
            assert_eq!(leaf_c, None);
        }
        assert_eq!(mean_clustering(&g), 0.0);
        assert_eq!(mean_clustering_all_nodes(&g), 0.0);
    }

    #[test]
    fn paw_graph_hand_computed() {
        // Triangle {0,1,2} plus pendant 3 attached to 0.
        // local: node0 (deg 3): 1 link among 3 neighbors → 1/3;
        //        node1, node2 (deg 2): 1/1 = 1; node3: undefined.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (0, 3)]).unwrap();
        let local = local_clustering(&g);
        assert!((local[0].unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local[1], Some(1.0));
        assert_eq!(local[2], Some(1.0));
        assert_eq!(local[3], None);
        assert!((mean_clustering(&g) - (1.0 / 3.0 + 2.0) / 3.0).abs() < 1e-12);
        // all-nodes convention divides by 4 instead
        assert!((mean_clustering_all_nodes(&g) - (1.0 / 3.0 + 2.0) / 4.0).abs() < 1e-12);
        // transitivity: 3 triangles-as-wedge-closures / wedges = 3·1/(3+1+1) = 0.6
        assert!((transitivity(&g) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn csr_census_matches_graph_census() {
        for g in [
            builders::karate_club(),
            builders::complete(5),
            builders::petersen(),
        ] {
            let csr = dk_graph::CsrGraph::from_graph(&g);
            assert_eq!(triangles_per_node(&g), triangles_per_node(&csr));
            assert_eq!(triangle_count(&g), triangle_count(&csr));
        }
    }

    #[test]
    fn clustering_by_degree_on_karate() {
        let g = builders::karate_club();
        let ck = clustering_by_degree(&g);
        // sanity: all values in [0,1], degrees ascending
        for w in ck.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        for &(_, c) in &ck {
            assert!((0.0..=1.0).contains(&c));
        }
        // karate has 45 triangles (known value)
        assert_eq!(triangle_count(&g), 45);
    }
}

//! Sampled (approximate) all-pairs traversal — the Brandes–Pich
//! source-sampling estimator.
//!
//! The exact distance distribution and betweenness run one BFS per node:
//! O(n·m), the dominant cost of the whole evaluation pipeline (§5) and
//! infeasible at 10⁶-node scale. Brandes & Pich ("Centrality estimation
//! in large networks", 2007) showed that running the Brandes pass from
//! `K ≪ n` *pivot* sources and extrapolating by `n/K` estimates
//! betweenness well when pivots cover the graph evenly; the same K BFS
//! trees give an unbiased sample of the distance distribution (each
//! source contributes its full distance row, so ratios of counts — mean,
//! standard deviation, the `d(x)` shape — need no rescaling at all).
//!
//! Behind the metric registry these appear as `distance_approx` /
//! `betweenness_approx` with cost class
//! [`Cost::Sampled`](crate::metric::Cost::Sampled); the pivot budget is
//! the [`Analyzer::sample_sources`](crate::analyzer::Analyzer::sample_sources)
//! knob (CLI `--samples K`).
//!
//! ## Determinism contract
//!
//! * Pivots come from a seeded deterministic stride over the node ids
//!   ([`sample_pivots`]) — a pure function of `(n, K)`, never of thread
//!   count or wall clock. Two runs agree exactly.
//! * The per-pivot partials merge in fixed chunk order (the same
//!   deterministic chunking the exact pass uses), so results are
//!   **bit-identical for every thread count**.
//! * `K ≥ n` degrades to the identity pivot set with scale 1, making the
//!   estimate **equal to the exact pass** bit for bit.

use crate::betweenness::{
    brandes_over_sources, brandes_over_sources_sharded, brandes_over_sources_streamed, BrandesSums,
};
use crate::distance::DistanceDistribution;
use dk_graph::{AdjacencyView, CsrGraph, NodeId};

/// Result of one sampled traversal: the shared pass behind the
/// `distance_approx` and `betweenness_approx` registry metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct SampledTraversal {
    /// Distance rows of the pivot sources only (`counts[x]` = ordered
    /// `(pivot, node)` pairs at distance `x`; `nodes` is the full `n`).
    ///
    /// **Caveat**: only ratio statistics of this field — `mean()`,
    /// `std_dev()`, `pdf_positive()` — estimate the exact ones;
    /// absolute-count views (`pdf()`, `unreachable_pairs`) describe the
    /// `K/n` sample, not the graph. Use [`SampledTraversal::pdf_estimate`]
    /// and [`SampledTraversal::unreachable_fraction`] for properly
    /// rescaled whole-graph estimates.
    pub distances: DistanceDistribution,
    /// Estimated node betweenness, unordered-pair convention — the
    /// Brandes dependency sum over pivots, scaled by `n/K` (and halved,
    /// exactly like the exact pass). Equal to the exact values when
    /// `K ≥ n`.
    pub betweenness: Vec<f64>,
    /// Number of pivot sources actually traversed (`min(K, n)`).
    pub sources: usize,
    /// Greatest finite distance discovered from any pivot (the streamed
    /// eccentricity max-merge) — a lower bound on the diameter; equals
    /// `distances.diameter()` by construction.
    pub max_depth: u32,
}

impl SampledTraversal {
    /// Unbiased estimate of the paper-convention PDF `d(x)` (self-pairs
    /// included): `counts[x] / (K·n)` — the sampled counterpart of
    /// [`DistanceDistribution::pdf`], which on this struct's raw sample
    /// would come out scaled by `K/n`. Equals the exact PDF when
    /// `K ≥ n`.
    pub fn pdf_estimate(&self) -> Vec<f64> {
        let denom = self.sources as f64 * self.distances.nodes as f64;
        if denom == 0.0 {
            return Vec::new();
        }
        self.distances
            .counts
            .iter()
            .map(|&c| c as f64 / denom)
            .collect()
    }

    /// Estimated fraction of ordered pairs with no connecting path:
    /// `unreachable_pairs / (K·n)`. Exact when `K ≥ n`.
    pub fn unreachable_fraction(&self) -> f64 {
        let denom = self.sources as f64 * self.distances.nodes as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.distances.unreachable_pairs as f64 / denom
        }
    }
}

/// The `K` pivot sources for a graph of `n` nodes: a deterministic
/// golden-ratio stride over `0..n`, coprime with `n` so the first `K`
/// steps are distinct and spread quasi-uniformly across node ids
/// (construction algorithms assign ids in degree/arrival order, so a
/// stride also spreads pivots across *roles* — hubs and leaves both get
/// sampled).
///
/// `K ≥ n` returns the identity ordering `0..n`, which makes the
/// sampled pass coincide with the exact one.
pub fn sample_pivots(n: usize, k: usize) -> Vec<NodeId> {
    if n == 0 {
        return Vec::new();
    }
    if k >= n {
        return (0..n as NodeId).collect();
    }
    // golden-ratio fraction of n, nudged down to the nearest stride
    // coprime with n (stride 1 always qualifies, so this terminates)
    let mut stride = ((n as f64 * 0.618_033_988_749_895) as usize).max(1);
    while gcd(stride, n) != 1 {
        stride -= 1;
    }
    // fixed offset decorrelates the pivot set from node 0 on small n;
    // SplitMix-style hash of n keeps it a pure function of the graph
    let offset = {
        let mut z = (n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        (z ^ (z >> 31)) as usize % n
    };
    (0..k)
        .map(|i| ((offset + i * stride) % n) as NodeId)
        .collect()
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Runs the Brandes–Pich pass from `k` pivots over a prepared CSR
/// snapshot. See [`SampledTraversal`] for the output conventions and the
/// [module docs](self) for the determinism contract.
pub fn sampled_traversal_csr(g: &CsrGraph, k: usize, threads: usize) -> SampledTraversal {
    sampled_traversal(g, k, threads)
}

/// **Streaming** Brandes–Pich pass: the pivot sources are partitioned
/// into shards and each worker streams its shards into compact reducers,
/// exactly like the exact streamed pass
/// ([`crate::betweenness::betweenness_and_distances_streamed`]) — same
/// pivots, same merge order, so the result is bit-identical to
/// [`sampled_traversal_csr`] when `shards` is
/// [`DEFAULT_SHARDS`](crate::stream::DEFAULT_SHARDS), and to
/// [`sampled_traversal_sharded`] at any equal shard count.
pub fn sampled_traversal_streamed(
    g: &CsrGraph,
    k: usize,
    shards: usize,
    threads: usize,
) -> SampledTraversal {
    let n = g.node_count();
    if n == 0 {
        return SampledTraversal::empty();
    }
    let pivots = sample_pivots(n, k.max(1));
    let sums = brandes_over_sources_streamed(g, &pivots, shards, threads);
    finish_sampled(n, pivots.len(), sums)
}

/// In-memory pivot pass with an explicit shard count — the equivalence
/// oracle for [`sampled_traversal_streamed`] at the same shard count.
pub fn sampled_traversal_sharded(
    g: &CsrGraph,
    k: usize,
    shards: usize,
    threads: usize,
) -> SampledTraversal {
    let n = g.node_count();
    if n == 0 {
        return SampledTraversal::empty();
    }
    let pivots = sample_pivots(n, k.max(1));
    let sums = brandes_over_sources_sharded(g, &pivots, shards, threads);
    finish_sampled(n, pivots.len(), sums)
}

/// As [`sampled_traversal_csr`], generic over the adjacency view.
pub fn sampled_traversal<V: AdjacencyView + ?Sized>(
    g: &V,
    k: usize,
    threads: usize,
) -> SampledTraversal {
    let n = g.node_count();
    if n == 0 {
        return SampledTraversal::empty();
    }
    let pivots = sample_pivots(n, k.max(1));
    let sums = brandes_over_sources(g, &pivots, threads);
    finish_sampled(n, pivots.len(), sums)
}

impl SampledTraversal {
    fn empty() -> Self {
        SampledTraversal {
            distances: DistanceDistribution {
                counts: vec![],
                nodes: 0,
                unreachable_pairs: 0,
            },
            betweenness: Vec::new(),
            sources: 0,
            max_depth: 0,
        }
    }
}

/// Pair-convention halving plus the `n/K` extrapolation — shared by the
/// in-memory and streamed pivot passes.
fn finish_sampled(n: usize, pivot_count: usize, sums: BrandesSums) -> SampledTraversal {
    let BrandesSums {
        mut bc,
        counts,
        unreachable,
        depth,
    } = sums;
    // pair-convention halving (as in the exact pass), then the n/K
    // extrapolation; K = n gives scale exactly 1.0
    let scale = 0.5 * (n as f64 / pivot_count as f64);
    for v in bc.iter_mut() {
        *v *= scale;
    }
    SampledTraversal {
        distances: DistanceDistribution {
            counts,
            nodes: n,
            unreachable_pairs: unreachable,
        },
        betweenness: bc,
        sources: pivot_count,
        max_depth: depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::betweenness;
    use dk_graph::builders;

    #[test]
    fn pivots_distinct_and_in_range() {
        for (n, k) in [(10, 4), (97, 64), (1000, 64), (5, 5), (5, 99)] {
            let p = sample_pivots(n, k);
            assert_eq!(p.len(), k.min(n));
            let set: std::collections::BTreeSet<_> = p.iter().collect();
            assert_eq!(set.len(), p.len(), "n={n} k={k}: duplicate pivot");
            assert!(p.iter().all(|&v| (v as usize) < n));
        }
        assert!(sample_pivots(0, 8).is_empty());
    }

    #[test]
    fn pivots_are_deterministic() {
        assert_eq!(sample_pivots(100, 16), sample_pivots(100, 16));
        assert_eq!(sample_pivots(7, 99), (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn full_sample_equals_exact_bit_for_bit() {
        let g = builders::karate_club();
        let csr = dk_graph::CsrGraph::from_graph(&g);
        let exact = betweenness::betweenness_and_distances_csr(&csr, 2);
        for k in [34, 35, 1000] {
            let s = sampled_traversal_csr(&csr, k, 2);
            assert_eq!(s.sources, 34);
            assert_eq!(s.betweenness, exact.betweenness, "k = {k}");
            assert_eq!(s.distances, exact.distances, "k = {k}");
        }
    }

    #[test]
    fn thread_count_is_invisible() {
        let g = builders::grid(8, 9);
        let csr = dk_graph::CsrGraph::from_graph(&g);
        let serial = sampled_traversal_csr(&csr, 16, 1);
        for threads in [2, 4, 0] {
            assert_eq!(serial, sampled_traversal_csr(&csr, 16, threads));
        }
    }

    #[test]
    fn estimates_track_exact_on_karate() {
        let g = builders::karate_club();
        let csr = dk_graph::CsrGraph::from_graph(&g);
        let exact = betweenness::betweenness_and_distances_csr(&csr, 1);
        let s = sampled_traversal_csr(&csr, 16, 1);
        // distance mean: scale-free, should land within a few percent
        let rel = (s.distances.mean() - exact.distances.mean()).abs() / exact.distances.mean();
        assert!(rel < 0.1, "d̄ rel error {rel}");
        // betweenness: the hub ordering must survive sampling
        let argmax = |b: &[f64]| {
            b.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        assert_eq!(argmax(&s.betweenness), argmax(&exact.betweenness));
    }

    #[test]
    fn pdf_estimate_rescales_the_sample() {
        let g = builders::karate_club();
        let csr = dk_graph::CsrGraph::from_graph(&g);
        // full sample: estimate == exact pdf
        let full = sampled_traversal_csr(&csr, 34, 1);
        let exact = betweenness::betweenness_and_distances_csr(&csr, 1)
            .distances
            .pdf();
        assert_eq!(full.pdf_estimate(), exact);
        assert_eq!(full.unreachable_fraction(), 0.0);
        // partial sample: estimate still sums to ~1 (connected graph),
        // unlike the raw sample's pdf() which is scaled by K/n
        let part = sampled_traversal_csr(&csr, 8, 1);
        let total: f64 = part.pdf_estimate().iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "total {total}");
        let raw_total: f64 = part.distances.pdf().iter().sum();
        assert!((raw_total - 8.0 / 34.0).abs() < 1e-12);
    }

    #[test]
    fn streamed_pivot_pass_bit_identical_to_in_memory() {
        let g = builders::grid(6, 7);
        let csr = dk_graph::CsrGraph::from_graph(&g);
        let n = g.node_count();
        for k in [1, 8, n + 5] {
            for shards in [1, 2, 7, n] {
                let oracle = sampled_traversal_sharded(&csr, k, shards, 1);
                for threads in [1, 3] {
                    assert_eq!(
                        sampled_traversal_streamed(&csr, k, shards, threads),
                        oracle,
                        "k = {k}, shards = {shards}, threads = {threads}"
                    );
                }
            }
            // the default shard count reproduces the historical route
            assert_eq!(
                sampled_traversal_sharded(&csr, k, crate::stream::DEFAULT_SHARDS, 2),
                sampled_traversal_csr(&csr, k, 1)
            );
        }
    }

    #[test]
    fn estimators_never_divide_by_zero() {
        // empty graph: zero pivots, zero denominators — still defined
        let empty = sampled_traversal(&dk_graph::Graph::new(), 8, 1);
        assert_eq!(empty.sources, 0);
        assert!(empty.pdf_estimate().is_empty());
        assert_eq!(empty.unreachable_fraction(), 0.0);
        assert_eq!(empty.max_depth, 0);
        // disconnected graph: fraction strictly inside (0, 1), all finite
        let g = dk_graph::Graph::from_edges(6, [(0, 1), (2, 3), (3, 4)]).unwrap();
        let csr = dk_graph::CsrGraph::from_graph(&g);
        let s = sampled_traversal_streamed(&csr, 99, 3, 2);
        assert_eq!(s.sources, 6); // K >= n: every node is a pivot
        let f = s.unreachable_fraction();
        assert!(f > 0.0 && f < 1.0, "unreachable fraction {f}");
        assert!(s.pdf_estimate().iter().all(|p| p.is_finite()));
        assert_eq!(s.max_depth as usize, s.distances.diameter());
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let empty = sampled_traversal(&dk_graph::Graph::new(), 8, 1);
        assert_eq!(empty.sources, 0);
        assert!(empty.betweenness.is_empty());
        let p2 = sampled_traversal(&builders::path(2), 8, 1);
        assert_eq!(p2.sources, 2);
    }
}

//! Sampled (approximate) all-pairs traversal — the Brandes–Pich
//! source-sampling estimator.
//!
//! The exact distance distribution and betweenness run one BFS per node:
//! O(n·m), the dominant cost of the whole evaluation pipeline (§5) and
//! infeasible at 10⁶-node scale. Brandes & Pich ("Centrality estimation
//! in large networks", 2007) showed that running the Brandes pass from
//! `K ≪ n` *pivot* sources and extrapolating by `n/K` estimates
//! betweenness well when pivots cover the graph evenly; the same K BFS
//! trees give an unbiased sample of the distance distribution (each
//! source contributes its full distance row, so ratios of counts — mean,
//! standard deviation, the `d(x)` shape — need no rescaling at all).
//!
//! Behind the metric registry these appear as `distance_approx` /
//! `betweenness_approx` with cost class
//! [`Cost::Sampled`](crate::metric::Cost::Sampled); the pivot budget is
//! the [`Analyzer::sample_sources`](crate::analyzer::Analyzer::sample_sources)
//! knob (CLI `--samples K`).
//!
//! ## Determinism contract
//!
//! * Pivots come from a seeded deterministic stride over the node ids
//!   ([`sample_pivots`]) — a pure function of `(n, K)`, never of thread
//!   count or wall clock. Two runs agree exactly.
//! * The per-pivot partials merge in fixed chunk order (the same
//!   deterministic chunking the exact pass uses), so results are
//!   **bit-identical for every thread count**.
//! * `K ≥ n` degrades to the identity pivot set with scale 1, making the
//!   estimate **equal to the exact pass** bit for bit.

use crate::betweenness::{
    brandes_over_sources, brandes_over_sources_sharded, brandes_over_sources_streamed, BrandesSums,
};
use crate::distance::DistanceDistribution;
use crate::stream::{run_sharded, run_sharded_fold, DEFAULT_SHARDS};
use dk_graph::traversal::BfsScratch;
use dk_graph::{traversal, AdjacencyView, CsrGraph, NodeId, Relabeling};

/// Result of one sampled traversal: the shared pass behind the
/// `distance_approx` and `betweenness_approx` registry metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct SampledTraversal {
    /// Distance rows of the pivot sources only (`counts[x]` = ordered
    /// `(pivot, node)` pairs at distance `x`; `nodes` is the full `n`).
    ///
    /// **Caveat**: only ratio statistics of this field — `mean()`,
    /// `std_dev()`, `pdf_positive()` — estimate the exact ones;
    /// absolute-count views (`pdf()`, `unreachable_pairs`) describe the
    /// `K/n` sample, not the graph. Use [`SampledTraversal::pdf_estimate`]
    /// and [`SampledTraversal::unreachable_fraction`] for properly
    /// rescaled whole-graph estimates.
    pub distances: DistanceDistribution,
    /// Estimated node betweenness, unordered-pair convention — the
    /// Brandes dependency sum over pivots, scaled by `n/K` (and halved,
    /// exactly like the exact pass). Equal to the exact values when
    /// `K ≥ n`.
    pub betweenness: Vec<f64>,
    /// Number of pivot sources actually traversed (`min(K, n)`).
    pub sources: usize,
    /// Greatest finite distance discovered from any pivot (the streamed
    /// eccentricity max-merge) — a lower bound on the diameter; equals
    /// `distances.diameter()` by construction.
    pub max_depth: u32,
}

impl SampledTraversal {
    /// Unbiased estimate of the paper-convention PDF `d(x)` (self-pairs
    /// included): `counts[x] / (K·n)` — the sampled counterpart of
    /// [`DistanceDistribution::pdf`], which on this struct's raw sample
    /// would come out scaled by `K/n`. Equals the exact PDF when
    /// `K ≥ n`.
    pub fn pdf_estimate(&self) -> Vec<f64> {
        let denom = self.sources as f64 * self.distances.nodes as f64;
        if denom == 0.0 {
            return Vec::new();
        }
        self.distances
            .counts
            .iter()
            .map(|&c| c as f64 / denom)
            .collect()
    }

    /// Estimated fraction of ordered pairs with no connecting path:
    /// `unreachable_pairs / (K·n)`. Exact when `K ≥ n`.
    pub fn unreachable_fraction(&self) -> f64 {
        let denom = self.sources as f64 * self.distances.nodes as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.distances.unreachable_pairs as f64 / denom
        }
    }
}

/// The `K` pivot sources for a graph of `n` nodes: a deterministic
/// golden-ratio stride over `0..n`, coprime with `n` so the first `K`
/// steps are distinct and spread quasi-uniformly across node ids
/// (construction algorithms assign ids in degree/arrival order, so a
/// stride also spreads pivots across *roles* — hubs and leaves both get
/// sampled).
///
/// `K ≥ n` returns the identity ordering `0..n`, which makes the
/// sampled pass coincide with the exact one.
pub fn sample_pivots(n: usize, k: usize) -> Vec<NodeId> {
    if n == 0 {
        return Vec::new();
    }
    if k >= n {
        return (0..n as NodeId).collect();
    }
    // golden-ratio fraction of n, nudged down to the nearest stride
    // coprime with n (stride 1 always qualifies, so this terminates)
    let mut stride = ((n as f64 * 0.618_033_988_749_895) as usize).max(1);
    while gcd(stride, n) != 1 {
        stride -= 1;
    }
    // fixed offset decorrelates the pivot set from node 0 on small n;
    // SplitMix-style hash of n keeps it a pure function of the graph
    let offset = {
        let mut z = (n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        (z ^ (z >> 31)) as usize % n
    };
    (0..k)
        .map(|i| ((offset + i * stride) % n) as NodeId)
        .collect()
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Runs the Brandes–Pich pass from `k` pivots over a prepared CSR
/// snapshot. See [`SampledTraversal`] for the output conventions and the
/// [module docs](self) for the determinism contract.
pub fn sampled_traversal_csr(g: &CsrGraph, k: usize, threads: usize) -> SampledTraversal {
    sampled_traversal(g, k, threads)
}

/// **Streaming** Brandes–Pich pass: the pivot sources are partitioned
/// into shards and each worker streams its shards into compact reducers,
/// exactly like the exact streamed pass
/// ([`crate::betweenness::betweenness_and_distances_streamed`]) — same
/// pivots, same merge order, so the result is bit-identical to
/// [`sampled_traversal_csr`] when `shards` is
/// [`DEFAULT_SHARDS`](crate::stream::DEFAULT_SHARDS), and to
/// [`sampled_traversal_sharded`] at any equal shard count.
pub fn sampled_traversal_streamed(
    g: &CsrGraph,
    k: usize,
    shards: usize,
    threads: usize,
) -> SampledTraversal {
    let n = g.node_count();
    if n == 0 {
        return SampledTraversal::empty();
    }
    let pivots = sample_pivots(n, k.max(1));
    let sums = brandes_over_sources_streamed(g, &pivots, shards, threads);
    finish_sampled(n, pivots.len(), sums)
}

/// In-memory pivot pass with an explicit shard count — the equivalence
/// oracle for [`sampled_traversal_streamed`] at the same shard count.
pub fn sampled_traversal_sharded(
    g: &CsrGraph,
    k: usize,
    shards: usize,
    threads: usize,
) -> SampledTraversal {
    let n = g.node_count();
    if n == 0 {
        return SampledTraversal::empty();
    }
    let pivots = sample_pivots(n, k.max(1));
    let sums = brandes_over_sources_sharded(g, &pivots, shards, threads);
    finish_sampled(n, pivots.len(), sums)
}

/// The Brandes–Pich pass over a **relabeled** snapshot
/// ([`CsrGraph::from_graph_relabeled`]), returning results in
/// **external** id space — bit-identical to the plain sharded/streamed
/// routes at the same shard count.
///
/// The pivot *identities* are computed in external id space
/// ([`sample_pivots`] strides over external ids exactly as the
/// unpermuted route does) and only then mapped through the permutation
/// — striding over internal ids would silently select a different
/// pivot set whenever the permutation lands, changing every `--samples
/// K` report. The estimated betweenness is inverse-permuted before it
/// leaves; histogram/eccentricity reducers are label-independent.
pub fn sampled_traversal_relabeled(
    g: &CsrGraph,
    relab: &Relabeling,
    k: usize,
    shards: usize,
    threads: usize,
    streamed: bool,
) -> SampledTraversal {
    let n = g.node_count();
    if n == 0 {
        return SampledTraversal::empty();
    }
    let pivots: Vec<NodeId> = sample_pivots(n, k.max(1))
        .into_iter()
        .map(|e| relab.to_new(e))
        .collect();
    let sums = if streamed {
        brandes_over_sources_streamed(g, &pivots, shards, threads)
    } else {
        brandes_over_sources_sharded(g, &pivots, shards, threads)
    };
    let mut out = finish_sampled(n, pivots.len(), sums);
    out.betweenness = relab.invert_values(&out.betweenness);
    out
}

/// The distance-only half of the sampled pass: the pivot distance
/// histogram without the Brandes σ/δ machinery — what the registry's
/// `distance_approx` reads when no sampled *betweenness* metric rides
/// along ([`crate::metric::Dep::SampledDistances`]).
///
/// Splitting it off matters because plain BFS is free to
/// direction-optimize: [`traversal::bfs_visit`] switches to bottom-up
/// scans on the wide mid-BFS levels of scale-free graphs, skipping most
/// edge probes — several times faster than the Brandes forward pass,
/// which must follow discovery order for its σ accumulation and can
/// never take that route. The histogram reducer only counts
/// `(node, level)` pairs, so the within-level visit-order difference
/// between the two kernels is invisible: `distances`, `sources`, and
/// `max_depth` are **bit-identical** to the corresponding
/// [`SampledTraversal`] fields from the fused pass over the same pivots.
#[derive(Clone, Debug, PartialEq)]
pub struct SampledDistances {
    /// Distance rows of the pivot sources only — same conventions (and
    /// caveats) as [`SampledTraversal::distances`].
    pub distances: DistanceDistribution,
    /// Number of pivot sources actually traversed (`min(K, n)`).
    pub sources: usize,
    /// Greatest finite distance discovered from any pivot.
    pub max_depth: u32,
}

impl SampledDistances {
    fn empty() -> Self {
        SampledDistances {
            distances: DistanceDistribution {
                counts: vec![],
                nodes: 0,
                unreachable_pairs: 0,
            },
            sources: 0,
            max_depth: 0,
        }
    }
}

/// One shard's worth of pivot BFS sources folded into a compact partial
/// (histogram counts, unreached tally, depth max) — the
/// direction-optimizing analogue of the Brandes shard, reusing one
/// [`BfsScratch`] across the shard's sources.
fn distance_shard<V: AdjacencyView + ?Sized>(
    g: &V,
    sources: &[NodeId],
    range: std::ops::Range<u32>,
) -> (Vec<u64>, u64, u32) {
    let n = g.node_count();
    let mut counts: Vec<u64> = Vec::new();
    let mut unreachable = 0u64;
    let mut depth = 0u32;
    let mut scratch = BfsScratch::new(n);
    for idx in range {
        let s = sources[idx as usize];
        let (reached, d) = traversal::bfs_visit(g, s, &mut scratch, |_, du| {
            let dx = du as usize;
            if counts.len() <= dx {
                counts.resize(dx + 1, 0);
            }
            counts[dx] += 1;
        });
        unreachable += n as u64 - reached;
        depth = depth.max(d);
    }
    (counts, unreachable, depth)
}

/// Shard-order merge of the distance partials — all integer reducers,
/// so any shard/thread layout gives identical sums.
fn merge_distance_shard(acc: &mut (Vec<u64>, u64, u32), p: (Vec<u64>, u64, u32)) {
    let (counts, unreachable, depth) = acc;
    if counts.len() < p.0.len() {
        counts.resize(p.0.len(), 0);
    }
    for (x, v) in p.0.into_iter().enumerate() {
        counts[x] += v;
    }
    *unreachable += p.1;
    *depth = (*depth).max(p.2);
}

fn finish_sampled_distances(
    n: usize,
    pivot_count: usize,
    (counts, unreachable, depth): (Vec<u64>, u64, u32),
) -> SampledDistances {
    SampledDistances {
        distances: DistanceDistribution {
            counts,
            nodes: n,
            unreachable_pairs: unreachable,
        },
        sources: pivot_count,
        max_depth: depth,
    }
}

/// Distance-only pivot pass at the default shard count — the on-demand
/// entry the analyzer cache falls back to.
pub fn sampled_distances_csr(g: &CsrGraph, k: usize, threads: usize) -> SampledDistances {
    sampled_distances_sharded(g, k, DEFAULT_SHARDS, threads)
}

/// In-memory distance-only pivot pass with an explicit shard count —
/// the equivalence oracle for [`sampled_distances_streamed`].
pub fn sampled_distances_sharded(
    g: &CsrGraph,
    k: usize,
    shards: usize,
    threads: usize,
) -> SampledDistances {
    let n = g.node_count();
    if n == 0 {
        return SampledDistances::empty();
    }
    let pivots = sample_pivots(n, k.max(1));
    let threads = threads.clamp(1, pivots.len().max(1));
    let partials = run_sharded(pivots.len() as u32, shards, threads, |range| {
        distance_shard(g, &pivots, range)
    });
    let mut acc = (Vec::new(), 0u64, 0u32);
    for p in partials {
        merge_distance_shard(&mut acc, p);
    }
    finish_sampled_distances(n, pivots.len(), acc)
}

/// **Streaming** distance-only pivot pass: workers stream their pivot
/// shards through the direction-optimizing BFS into compact integer
/// reducers — `O(workers · n)` scratch in flight, identical results to
/// [`sampled_distances_sharded`] for every shard and thread count.
pub fn sampled_distances_streamed(
    g: &CsrGraph,
    k: usize,
    shards: usize,
    threads: usize,
) -> SampledDistances {
    let n = g.node_count();
    if n == 0 {
        return SampledDistances::empty();
    }
    let pivots = sample_pivots(n, k.max(1));
    let threads = threads.clamp(1, pivots.len().max(1));
    let acc = run_sharded_fold(
        pivots.len() as u32,
        shards,
        threads,
        |range| distance_shard(g, &pivots, range),
        (Vec::new(), 0u64, 0u32),
        merge_distance_shard,
    );
    finish_sampled_distances(n, pivots.len(), acc)
}

/// Distance-only pivot pass over a **relabeled** snapshot — the pivot
/// identities come from external id space exactly as in
/// [`sampled_traversal_relabeled`]; the histogram/depth reducers are
/// label-independent, so no inverse mapping is needed on the way out.
pub fn sampled_distances_relabeled(
    g: &CsrGraph,
    relab: &Relabeling,
    k: usize,
    shards: usize,
    threads: usize,
    streamed: bool,
) -> SampledDistances {
    let n = g.node_count();
    if n == 0 {
        return SampledDistances::empty();
    }
    let pivots: Vec<NodeId> = sample_pivots(n, k.max(1))
        .into_iter()
        .map(|e| relab.to_new(e))
        .collect();
    let threads = threads.clamp(1, pivots.len().max(1));
    let acc = if streamed {
        run_sharded_fold(
            pivots.len() as u32,
            shards,
            threads,
            |range| distance_shard(g, &pivots, range),
            (Vec::new(), 0u64, 0u32),
            merge_distance_shard,
        )
    } else {
        let partials = run_sharded(pivots.len() as u32, shards, threads, |range| {
            distance_shard(g, &pivots, range)
        });
        let mut acc = (Vec::new(), 0u64, 0u32);
        for p in partials {
            merge_distance_shard(&mut acc, p);
        }
        acc
    };
    finish_sampled_distances(n, pivots.len(), acc)
}

/// As [`sampled_traversal_csr`], generic over the adjacency view.
pub fn sampled_traversal<V: AdjacencyView + ?Sized>(
    g: &V,
    k: usize,
    threads: usize,
) -> SampledTraversal {
    let n = g.node_count();
    if n == 0 {
        return SampledTraversal::empty();
    }
    let pivots = sample_pivots(n, k.max(1));
    let sums = brandes_over_sources(g, &pivots, threads);
    finish_sampled(n, pivots.len(), sums)
}

impl SampledTraversal {
    fn empty() -> Self {
        SampledTraversal {
            distances: DistanceDistribution {
                counts: vec![],
                nodes: 0,
                unreachable_pairs: 0,
            },
            betweenness: Vec::new(),
            sources: 0,
            max_depth: 0,
        }
    }
}

/// Pair-convention halving plus the `n/K` extrapolation — shared by the
/// in-memory and streamed pivot passes.
fn finish_sampled(n: usize, pivot_count: usize, sums: BrandesSums) -> SampledTraversal {
    let BrandesSums {
        mut bc,
        counts,
        unreachable,
        depth,
    } = sums;
    // pair-convention halving (as in the exact pass), then the n/K
    // extrapolation; K = n gives scale exactly 1.0
    let scale = 0.5 * (n as f64 / pivot_count as f64);
    for v in bc.iter_mut() {
        *v *= scale;
    }
    SampledTraversal {
        distances: DistanceDistribution {
            counts,
            nodes: n,
            unreachable_pairs: unreachable,
        },
        betweenness: bc,
        sources: pivot_count,
        max_depth: depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::betweenness;
    use dk_graph::builders;

    #[test]
    fn pivots_distinct_and_in_range() {
        for (n, k) in [(10, 4), (97, 64), (1000, 64), (5, 5), (5, 99)] {
            let p = sample_pivots(n, k);
            assert_eq!(p.len(), k.min(n));
            let set: std::collections::BTreeSet<_> = p.iter().collect();
            assert_eq!(set.len(), p.len(), "n={n} k={k}: duplicate pivot");
            assert!(p.iter().all(|&v| (v as usize) < n));
        }
        assert!(sample_pivots(0, 8).is_empty());
    }

    #[test]
    fn pivots_are_deterministic() {
        assert_eq!(sample_pivots(100, 16), sample_pivots(100, 16));
        assert_eq!(sample_pivots(7, 99), (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn full_sample_equals_exact_bit_for_bit() {
        let g = builders::karate_club();
        let csr = dk_graph::CsrGraph::from_graph(&g);
        let exact = betweenness::betweenness_and_distances_csr(&csr, 2);
        for k in [34, 35, 1000] {
            let s = sampled_traversal_csr(&csr, k, 2);
            assert_eq!(s.sources, 34);
            assert_eq!(s.betweenness, exact.betweenness, "k = {k}");
            assert_eq!(s.distances, exact.distances, "k = {k}");
        }
    }

    #[test]
    fn thread_count_is_invisible() {
        let g = builders::grid(8, 9);
        let csr = dk_graph::CsrGraph::from_graph(&g);
        let serial = sampled_traversal_csr(&csr, 16, 1);
        for threads in [2, 4, 0] {
            assert_eq!(serial, sampled_traversal_csr(&csr, 16, threads));
        }
    }

    #[test]
    fn estimates_track_exact_on_karate() {
        let g = builders::karate_club();
        let csr = dk_graph::CsrGraph::from_graph(&g);
        let exact = betweenness::betweenness_and_distances_csr(&csr, 1);
        let s = sampled_traversal_csr(&csr, 16, 1);
        // distance mean: scale-free, should land within a few percent
        let rel = (s.distances.mean() - exact.distances.mean()).abs() / exact.distances.mean();
        assert!(rel < 0.1, "d̄ rel error {rel}");
        // betweenness: the hub ordering must survive sampling
        let argmax = |b: &[f64]| {
            b.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        assert_eq!(argmax(&s.betweenness), argmax(&exact.betweenness));
    }

    #[test]
    fn pdf_estimate_rescales_the_sample() {
        let g = builders::karate_club();
        let csr = dk_graph::CsrGraph::from_graph(&g);
        // full sample: estimate == exact pdf
        let full = sampled_traversal_csr(&csr, 34, 1);
        let exact = betweenness::betweenness_and_distances_csr(&csr, 1)
            .distances
            .pdf();
        assert_eq!(full.pdf_estimate(), exact);
        assert_eq!(full.unreachable_fraction(), 0.0);
        // partial sample: estimate still sums to ~1 (connected graph),
        // unlike the raw sample's pdf() which is scaled by K/n
        let part = sampled_traversal_csr(&csr, 8, 1);
        let total: f64 = part.pdf_estimate().iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "total {total}");
        let raw_total: f64 = part.distances.pdf().iter().sum();
        assert!((raw_total - 8.0 / 34.0).abs() < 1e-12);
    }

    #[test]
    fn streamed_pivot_pass_bit_identical_to_in_memory() {
        let g = builders::grid(6, 7);
        let csr = dk_graph::CsrGraph::from_graph(&g);
        let n = g.node_count();
        for k in [1, 8, n + 5] {
            for shards in [1, 2, 7, n] {
                let oracle = sampled_traversal_sharded(&csr, k, shards, 1);
                for threads in [1, 3] {
                    assert_eq!(
                        sampled_traversal_streamed(&csr, k, shards, threads),
                        oracle,
                        "k = {k}, shards = {shards}, threads = {threads}"
                    );
                }
            }
            // the default shard count reproduces the historical route
            assert_eq!(
                sampled_traversal_sharded(&csr, k, crate::stream::DEFAULT_SHARDS, 2),
                sampled_traversal_csr(&csr, k, 1)
            );
        }
    }

    #[test]
    fn relabeled_route_is_bit_identical() {
        // same pivots (external id space), same per-source arithmetic,
        // inverse-permuted outputs: the relabeled snapshot must be
        // invisible in the report, bit for bit.
        for g in [
            builders::karate_club(),
            builders::grid(5, 6),
            builders::star(9),
            dk_graph::Graph::from_edges(7, [(0, 1), (1, 2), (3, 4), (5, 6)]).unwrap(),
        ] {
            let csr = dk_graph::CsrGraph::from_graph(&g);
            let (rcsr, relab) = dk_graph::CsrGraph::from_graph_relabeled(&g);
            for k in [1, 8, g.node_count() + 3] {
                for streamed in [false, true] {
                    let plain = if streamed {
                        sampled_traversal_streamed(&csr, k, 3, 2)
                    } else {
                        sampled_traversal_sharded(&csr, k, 3, 2)
                    };
                    let rel = sampled_traversal_relabeled(&rcsr, &relab, k, 3, 2, streamed);
                    assert_eq!(plain, rel, "k = {k}, streamed = {streamed}");
                }
            }
        }
        let (e, r) = dk_graph::CsrGraph::from_graph_relabeled(&dk_graph::Graph::new());
        assert_eq!(
            sampled_traversal_relabeled(&e, &r, 8, 2, 1, false).sources,
            0
        );
    }

    #[test]
    fn sampled_distances_match_the_fused_pass_bit_for_bit() {
        // the direction-optimizing distance-only kernel and the Brandes
        // fused kernel must agree on every integer reducer — histogram,
        // unreached tally, depth — for the same pivots, on every route
        for g in [
            builders::karate_club(),
            builders::grid(5, 6),
            builders::star(9),
            dk_graph::Graph::from_edges(7, [(0, 1), (1, 2), (3, 4), (5, 6)]).unwrap(),
        ] {
            let csr = dk_graph::CsrGraph::from_graph(&g);
            let (rcsr, relab) = dk_graph::CsrGraph::from_graph_relabeled(&g);
            for k in [1, 8, g.node_count() + 3] {
                let fused = sampled_traversal_sharded(&csr, k, 3, 2);
                let check = |d: &SampledDistances, route: &str| {
                    assert_eq!(d.distances, fused.distances, "k = {k}, {route}");
                    assert_eq!(d.sources, fused.sources, "k = {k}, {route}");
                    assert_eq!(d.max_depth, fused.max_depth, "k = {k}, {route}");
                };
                check(&sampled_distances_sharded(&csr, k, 3, 2), "sharded");
                check(&sampled_distances_streamed(&csr, k, 3, 2), "streamed");
                check(&sampled_distances_csr(&csr, k, 1), "csr");
                for streamed in [false, true] {
                    check(
                        &sampled_distances_relabeled(&rcsr, &relab, k, 3, 2, streamed),
                        "relabeled",
                    );
                }
            }
        }
        let empty = dk_graph::CsrGraph::from_graph(&dk_graph::Graph::new());
        assert_eq!(sampled_distances_streamed(&empty, 8, 2, 1).sources, 0);
        let (e, r) = dk_graph::CsrGraph::from_graph_relabeled(&dk_graph::Graph::new());
        assert_eq!(
            sampled_distances_relabeled(&e, &r, 8, 2, 1, true).sources,
            0
        );
    }

    #[test]
    fn estimators_never_divide_by_zero() {
        // empty graph: zero pivots, zero denominators — still defined
        let empty = sampled_traversal(&dk_graph::Graph::new(), 8, 1);
        assert_eq!(empty.sources, 0);
        assert!(empty.pdf_estimate().is_empty());
        assert_eq!(empty.unreachable_fraction(), 0.0);
        assert_eq!(empty.max_depth, 0);
        // disconnected graph: fraction strictly inside (0, 1), all finite
        let g = dk_graph::Graph::from_edges(6, [(0, 1), (2, 3), (3, 4)]).unwrap();
        let csr = dk_graph::CsrGraph::from_graph(&g);
        let s = sampled_traversal_streamed(&csr, 99, 3, 2);
        assert_eq!(s.sources, 6); // K >= n: every node is a pivot
        let f = s.unreachable_fraction();
        assert!(f > 0.0 && f < 1.0, "unreachable fraction {f}");
        assert!(s.pdf_estimate().iter().all(|p| p.is_finite()));
        assert_eq!(s.max_depth as usize, s.distances.diameter());
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let empty = sampled_traversal(&dk_graph::Graph::new(), 8, 1);
        assert_eq!(empty.sources, 0);
        assert!(empty.betweenness.is_empty());
        let p2 = sampled_traversal(&builders::path(2), 8, 1);
        assert_eq!(p2.sources, 2);
    }
}

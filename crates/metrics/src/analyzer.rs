//! The [`Analyzer`] facade: metric selection, shared-computation cache,
//! parallel execution, and ensemble statistics.
//!
//! The analysis-side mirror of `dk_core::generate::Generator`: a builder
//! that selects metrics (by handle or by name), fixes the GCC policy and
//! tuning knobs, and then
//!
//! * [`Analyzer::analyze`] — one graph → one [`Report`], with every
//!   shared pass (GCC, triangle census, fused distance+betweenness
//!   traversal, spectral solve) computed **once** and independent work
//!   fanned out over the deterministic runner [`dk_graph::ensemble`];
//! * [`Analyzer::run_ensemble`] — a seeded graph ensemble → an
//!   [`EnsembleSummary`] of per-metric mean/std/min/max (what the
//!   paper's Table 2 and figures 5–9 actually report: "averages over
//!   100 graphs generated with a different random seed in each case",
//!   §5).
//!
//! ## Quickstart
//!
//! ```
//! use dk_metrics::analyzer::Analyzer;
//! use dk_graph::builders;
//!
//! let analyzer = Analyzer::new();          // the paper's §2 battery
//! let report = analyzer.analyze(&builders::karate_club());
//! assert_eq!(report.scalar("n"), Some(34.0));
//! assert!(report.scalar("r").unwrap() < 0.0); // karate is disassortative
//! println!("{}", report.to_json());        // machine-readable form
//! ```
//!
//! Determinism: metric values depend only on the input graph (and, for
//! ensembles, the master seed), never on the thread count — parallel
//! output is byte-identical to serial.

use crate::cache::{AnalysisCache, AnalyzeOptions, GccPolicy};
use crate::json;
use crate::metric::{AnyMetric, Kind, MetricValue};
use crate::report::{GraphSummary, MetricRecord, Report};
use crate::stream::ExecMode;
use dk_graph::Graph;
use rand::rngs::StdRng;

/// Builder facade over the metric registry and the shared-computation
/// cache. See the [module docs](self) for a quickstart.
#[derive(Clone, Debug)]
pub struct Analyzer {
    metrics: Vec<AnyMetric>,
    opts: AnalyzeOptions,
}

impl Default for Analyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl Analyzer {
    /// Analyzer over the paper's default battery
    /// ([`AnyMetric::default_set`]).
    pub fn new() -> Self {
        Analyzer {
            metrics: AnyMetric::default_set(),
            opts: AnalyzeOptions::default(),
        }
    }

    /// Replaces the metric selection (duplicates collapse to the first
    /// occurrence; order is preserved and drives report order).
    pub fn metrics(mut self, metrics: impl IntoIterator<Item = AnyMetric>) -> Self {
        self.metrics.clear();
        for m in metrics {
            if !self.metrics.contains(&m) {
                self.metrics.push(m);
            }
        }
        self
    }

    /// Selects metrics from a comma-separated name list
    /// (see [`AnyMetric::parse_list`] for names and set keywords).
    pub fn metric_names(self, names: &str) -> Result<Self, String> {
        let list = AnyMetric::parse_list(names)?;
        Ok(self.metrics(list))
    }

    /// Selects every registered metric.
    pub fn all_metrics(self) -> Self {
        let all: Vec<AnyMetric> = AnyMetric::all().collect();
        self.metrics(all)
    }

    /// Sets the GCC policy (default: extract, the paper's §5.2
    /// convention).
    pub fn gcc(mut self, policy: GccPolicy) -> Self {
        self.opts.gcc = policy;
        self
    }

    /// Sets the Lanczos iteration budget for spectral extremes.
    pub fn lanczos_iter(mut self, iters: usize) -> Self {
        self.opts.lanczos_iter = iters;
        self
    }

    /// Sets the worker-thread count (`0` = all cores). Results are
    /// identical for every value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.opts.threads = threads;
        self
    }

    /// Sets the pivot-source budget `K` for the sampled (`*_approx`)
    /// metrics — the Brandes–Pich estimator runs `K` BFS sources instead
    /// of all `n` and extrapolates by `n/K` (default 64; CLI
    /// `--samples`). Deterministic for any thread count; `K ≥ n` makes
    /// the sampled metrics equal their exact twins bit for bit.
    pub fn sample_sources(mut self, k: usize) -> Self {
        self.opts.samples = k.max(1);
        self
    }

    /// Sets the register-bit count `b` for the sketch (`*_sketch`)
    /// metrics — each node carries `2^b` HyperLogLog registers
    /// ([`crate::sketch`]; CLI `--sketch-bits`, default 8). Larger `b`
    /// tightens the `1.04/√2^b` standard error and costs `n·2^b` bytes
    /// of registers. Values are clamped into
    /// [`MIN_SKETCH_BITS`](crate::sketch::MIN_SKETCH_BITS)`..=`
    /// [`MAX_SKETCH_BITS`](crate::sketch::MAX_SKETCH_BITS); results are
    /// deterministic and thread/shard-count invariant for every value.
    pub fn sketch_bits(mut self, bits: u32) -> Self {
        self.opts.sketch_bits = bits.clamp(
            crate::sketch::MIN_SKETCH_BITS,
            crate::sketch::MAX_SKETCH_BITS,
        );
        self
    }

    /// Caps the HyperANF rounds of the sketch pass (the
    /// rounds-until-convergence threshold; default
    /// [`DEFAULT_SKETCH_ROUNDS`](crate::sketch::DEFAULT_SKETCH_ROUNDS)).
    /// Iteration always stops earlier at the register fixpoint, so the
    /// cap only bites on graphs whose diameter exceeds it — the result
    /// then covers distances up to the cap and reports
    /// `converged = false` internally.
    pub fn sketch_rounds(mut self, rounds: usize) -> Self {
        self.opts.sketch_rounds = rounds.max(1);
        self
    }

    /// Sets the source shard count for the traversal passes (CLI
    /// `--shards`) and opts into the **streamed** route: shard partials
    /// fold into `O(n)` reducers in shard order instead of being
    /// collected, so traversal memory is bounded by the worker count,
    /// not the shard count. Results are bit-identical to the in-memory
    /// route at the same shard count, for every thread count; values
    /// are clamped to at least 1. See [`crate::stream`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.opts.shards = Some(shards.max(1));
        self
    }

    /// Stamps a generation counter onto the built caches and reports
    /// (pure bookkeeping for long-lived holders such as the serve
    /// registry: a mutation verb bumps its epoch and any cache carrying
    /// an older stamp is known stale). Has no effect on metric values.
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.opts.epoch = epoch;
        self
    }

    /// Caps the traversal passes' working memory (CLI `--memory-budget`)
    /// and opts into the streamed route: the worker count is lowered
    /// until `workers × per-worker scratch` fits the budget (never below
    /// one worker). Results are identical for every budget.
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.opts.memory_budget = Some(bytes.max(1));
        self
    }

    /// Routes the traversal-shaped passes over a degree-descending
    /// relabeled CSR snapshot for cache locality (CLI `--relabel`). The
    /// permutation is inverted on every output surface, so every
    /// reported value is bit-identical to the unrelabeled route — this
    /// knob only changes memory-access order inside the passes.
    pub fn relabel(mut self, on: bool) -> Self {
        self.opts.relabel = on;
        self
    }

    /// Overrides the route policy for the traversal passes (default
    /// [`ExecMode::Auto`]: stream when `shards`/`memory_budget` are set
    /// or the analyzed graph exceeds
    /// [`AUTO_STREAM_NODES`](crate::stream::AUTO_STREAM_NODES)).
    /// [`ExecMode::InMemory`] pins the retained collect-then-merge
    /// route — the equivalence oracle the streamed route is tested
    /// against.
    pub fn exec_mode(mut self, mode: ExecMode) -> Self {
        self.opts.exec = mode;
        self
    }

    /// The current metric selection, in report order.
    pub fn selected(&self) -> &[AnyMetric] {
        &self.metrics
    }

    /// Analyzes one graph: builds the shared cache for the selected
    /// metrics, then computes independent metrics in parallel (serial
    /// when the thread budget is 1 — post-cache computes are cheap, so
    /// the ensemble runner's pool is skipped when it cannot pay off).
    pub fn analyze(&self, g: &Graph) -> Report {
        let cache = AnalysisCache::build(g, &self.metrics, &self.opts);
        let values: Vec<MetricValue> = if self.opts.threads == 1 || self.metrics.len() <= 1 {
            self.metrics.iter().map(|m| m.compute(&cache)).collect()
        } else {
            dk_graph::ensemble::run(
                self.metrics.len() as u64,
                0,
                self.opts.threads,
                |i, _rng| self.metrics[i as usize].compute(&cache),
            )
        };
        Report {
            graph: GraphSummary {
                nodes: cache.original_nodes(),
                edges: cache.original_edges(),
                analyzed_nodes: cache.graph().node_count(),
                analyzed_edges: cache.graph().edge_count(),
                gcc_fraction: cache.gcc_fraction(),
                gcc_applied: cache.gcc_applied(),
            },
            records: self
                .metrics
                .iter()
                .zip(values)
                .map(|(&metric, value)| MetricRecord { metric, value })
                .collect(),
        }
    }

    /// Runs a percolation / targeted-attack sweep (see [`crate::attack`])
    /// under this analyzer's configuration: the GCC policy decides the
    /// analyzed graph, the cached CSR snapshot is built once (shared
    /// with any later metric pass on the same cache), and the
    /// `sample_sources` / `threads` budgets drive the sampled
    /// betweenness ranking and the checkpoint distance probes.
    pub fn attack(
        &self,
        g: &Graph,
        opts: &crate::attack::AttackOptions,
    ) -> crate::attack::AttackReport {
        let prep = [AnyMetric::get("attack_threshold").expect("registered")];
        let cache = AnalysisCache::build(g, &prep, &self.opts);
        crate::attack::attack_sweep_cached(&cache, opts)
    }

    /// Analyzes an ensemble: `make(rng)` builds replica `i` from the
    /// deterministically derived seed, each replica is analyzed, and the
    /// per-metric summary statistics come back as an
    /// [`EnsembleSummary`].
    ///
    /// Replicas fan out over this analyzer's thread budget; the
    /// per-replica analysis runs single-threaded (the fan-out already
    /// saturates the pool). Replica `i`'s RNG depends only on
    /// `(master_seed, i)`, so any thread count produces identical
    /// statistics.
    pub fn run_ensemble<F>(&self, replicas: u64, master_seed: u64, make: F) -> EnsembleSummary
    where
        F: Fn(&mut StdRng) -> Graph + Sync,
    {
        let inner = Analyzer {
            metrics: self.metrics.clone(),
            opts: AnalyzeOptions {
                threads: 1,
                ..self.opts
            },
        };
        let reports =
            dk_graph::ensemble::run(replicas, master_seed, self.opts.threads, |_i, rng| {
                inner.analyze(&make(rng))
            });
        EnsembleSummary::from_reports(&reports)
    }
}

// ---------------------------------------------------------------------
// Ensemble statistics
// ---------------------------------------------------------------------

/// Summary statistics of one scalar across ensemble replicas.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalarSummary {
    /// Mean over replicas where the metric was defined.
    pub mean: f64,
    /// Population standard deviation over the same replicas.
    pub std: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Number of replicas where the metric was defined.
    pub defined: usize,
}

impl ScalarSummary {
    /// Summarizes a non-empty sample; `None` for an empty one.
    pub fn of(values: &[f64]) -> Option<ScalarSummary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        Some(ScalarSummary {
            mean,
            std: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            defined: values.len(),
        })
    }

    fn to_json(self) -> String {
        json::object([
            ("mean".into(), json::number(self.mean)),
            ("std".into(), json::number(self.std)),
            ("min".into(), json::number(self.min)),
            ("max".into(), json::number(self.max)),
            ("defined".into(), self.defined.to_string()),
        ])
    }
}

/// Per-metric ensemble statistics.
#[derive(Clone, Debug, PartialEq)]
pub enum SummaryValue {
    /// Scalar metric: summary over replicas (`None` if never defined).
    Scalar(Option<ScalarSummary>),
    /// Series metric: per-key summary over replicas defining the key.
    Series(Vec<(usize, ScalarSummary)>),
}

/// Per-metric summary statistics over a replica ensemble — the numbers
/// the paper's tables print (column means) and its figures plot (series
/// means), plus the spread the text quotes.
#[derive(Clone, Debug, PartialEq)]
pub struct EnsembleSummary {
    /// Number of replicas analyzed.
    pub replicas: usize,
    /// Field-wise mean of the per-replica graph summaries (counts
    /// rounded to the nearest integer).
    pub graph: GraphSummary,
    /// One entry per selected metric, in selection order.
    pub metrics: Vec<(AnyMetric, SummaryValue)>,
}

impl EnsembleSummary {
    /// Folds per-replica reports (all from the same analyzer) into
    /// summary statistics.
    pub fn from_reports(reports: &[Report]) -> EnsembleSummary {
        let Some(first) = reports.first() else {
            return EnsembleSummary {
                replicas: 0,
                graph: GraphSummary::default(),
                metrics: Vec::new(),
            };
        };
        let n = reports.len() as f64;
        let mean_of = |f: &dyn Fn(&Report) -> f64| reports.iter().map(f).sum::<f64>() / n;
        let graph = GraphSummary {
            nodes: mean_of(&|r| r.graph.nodes as f64).round() as usize,
            edges: mean_of(&|r| r.graph.edges as f64).round() as usize,
            analyzed_nodes: mean_of(&|r| r.graph.analyzed_nodes as f64).round() as usize,
            analyzed_edges: mean_of(&|r| r.graph.analyzed_edges as f64).round() as usize,
            gcc_fraction: mean_of(&|r| r.graph.gcc_fraction),
            gcc_applied: first.graph.gcc_applied,
        };
        let metrics = first
            .records
            .iter()
            .enumerate()
            .map(|(idx, rec)| {
                let values = reports.iter().map(|r| &r.records[idx].value);
                let summary = match rec.metric.kind() {
                    Kind::Scalar => {
                        let defined: Vec<f64> = values.filter_map(MetricValue::as_scalar).collect();
                        SummaryValue::Scalar(ScalarSummary::of(&defined))
                    }
                    Kind::Series => {
                        let mut per_key: std::collections::BTreeMap<usize, Vec<f64>> =
                            std::collections::BTreeMap::new();
                        for v in values {
                            if let MetricValue::Series(s) = v {
                                for &(x, y) in s {
                                    per_key.entry(x).or_default().push(y);
                                }
                            }
                        }
                        SummaryValue::Series(
                            per_key
                                .into_iter()
                                .map(|(x, ys)| {
                                    (
                                        x,
                                        ScalarSummary::of(&ys).expect("non-empty by construction"),
                                    )
                                })
                                .collect(),
                        )
                    }
                };
                (rec.metric, summary)
            })
            .collect();
        EnsembleSummary {
            replicas: reports.len(),
            graph,
            metrics,
        }
    }

    /// Summary of scalar metric `name` (canonical name or alias).
    pub fn scalar(&self, name: &str) -> Option<ScalarSummary> {
        let m = AnyMetric::get(name)?;
        self.metrics.iter().find_map(|(mm, v)| match v {
            SummaryValue::Scalar(s) if *mm == m => *s,
            _ => None,
        })
    }

    /// Per-key summaries of series metric `name`.
    pub fn series(&self, name: &str) -> Option<&[(usize, ScalarSummary)]> {
        let m = AnyMetric::get(name)?;
        self.metrics.iter().find_map(|(mm, v)| match v {
            SummaryValue::Series(s) if *mm == m => Some(s.as_slice()),
            _ => None,
        })
    }

    /// Per-key ensemble means of series metric `name` — the series the
    /// paper's figures plot.
    pub fn series_means(&self, name: &str) -> Option<Vec<(usize, f64)>> {
        Some(
            self.series(name)?
                .iter()
                .map(|&(x, s)| (x, s.mean))
                .collect(),
        )
    }

    fn project(&self, pick: impl Fn(ScalarSummary) -> f64) -> Report {
        Report {
            graph: self.graph.clone(),
            records: self
                .metrics
                .iter()
                .map(|&(metric, ref v)| MetricRecord {
                    metric,
                    value: match v {
                        SummaryValue::Scalar(Some(s)) => MetricValue::Scalar(pick(*s)),
                        SummaryValue::Scalar(None) => MetricValue::Undefined,
                        SummaryValue::Series(s) => {
                            MetricValue::Series(s.iter().map(|&(x, s)| (x, pick(s))).collect())
                        }
                    },
                })
                .collect(),
        }
    }

    /// The ensemble means as a [`Report`] (what table columns print).
    pub fn mean_report(&self) -> Report {
        self.project(|s| s.mean)
    }

    /// The ensemble standard deviations as a [`Report`].
    pub fn std_report(&self) -> Report {
        self.project(|s| s.std)
    }

    /// Machine-readable JSON:
    /// `{"replicas": 5, "graph": {...}, "metrics": {"k_avg": {"mean": ...,
    /// "std": ..., "min": ..., "max": ..., "defined": 5}, "d_x": [[1,
    /// {...}], ...]}}`.
    pub fn to_json(&self) -> String {
        json::object([
            ("replicas".into(), self.replicas.to_string()),
            ("graph".into(), self.graph.to_json()),
            (
                "metrics".into(),
                json::object(self.metrics.iter().map(|(m, v)| {
                    let value = match v {
                        SummaryValue::Scalar(Some(s)) => s.to_json(),
                        SummaryValue::Scalar(None) => "null".to_string(),
                        SummaryValue::Series(s) => json::array(
                            s.iter()
                                .map(|&(x, s)| json::array([x.to_string(), s.to_json()])),
                        ),
                    };
                    (m.name().to_string(), value)
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;
    use rand::Rng;

    #[test]
    fn default_battery_matches_selection() {
        let a = Analyzer::new();
        assert_eq!(a.selected(), AnyMetric::default_set().as_slice());
        let rep = a.analyze(&builders::karate_club());
        assert_eq!(rep.records.len(), a.selected().len());
    }

    #[test]
    fn duplicate_selection_collapses() {
        let a = Analyzer::new()
            .metric_names("k_avg,k_avg,avg_degree,r")
            .unwrap();
        assert_eq!(a.selected().len(), 2);
    }

    #[test]
    fn parallel_analysis_identical_to_serial() {
        let g = builders::karate_club();
        let base = Analyzer::new().all_metrics();
        let serial = base.clone().threads(1).analyze(&g);
        for threads in [2, 4, 0] {
            let parallel = base.clone().threads(threads).analyze(&g);
            assert_eq!(serial, parallel, "threads = {threads}");
            assert_eq!(serial.to_json(), parallel.to_json());
        }
    }

    #[test]
    fn ensemble_statistics_on_degenerate_ensemble() {
        // identical replicas → std 0, min == max == mean
        let a = Analyzer::new().metric_names("k_avg,d_avg").unwrap();
        let summary = a.run_ensemble(4, 7, |_rng| builders::cycle(6));
        assert_eq!(summary.replicas, 4);
        let k = summary.scalar("k_avg").unwrap();
        assert_eq!(
            (k.mean, k.std, k.min, k.max, k.defined),
            (2.0, 0.0, 2.0, 2.0, 4)
        );
        let d = summary.scalar("d_avg").unwrap();
        assert!((d.mean - 36.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn ensemble_thread_count_is_invisible() {
        let a = Analyzer::new().metric_names("k_avg,r,c_mean").unwrap();
        let make = |rng: &mut StdRng| {
            let n = 20 + rng.gen_range(0..10);
            builders::cycle(n)
        };
        let serial = a.clone().threads(1).run_ensemble(6, 11, make);
        let parallel = a.clone().threads(4).run_ensemble(6, 11, make);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn summary_projections_and_json() {
        let a = Analyzer::new().metric_names("k_avg,d_x").unwrap();
        let summary = a.run_ensemble(3, 5, |_| builders::path(4));
        let mean = summary.mean_report();
        assert_eq!(mean.scalar("k_avg"), Some(1.5));
        let means = summary.series_means("d_x").unwrap();
        assert_eq!(means.len(), 3); // distances 1..3 in P4
        let js = summary.to_json();
        assert!(js.contains("\"replicas\":3"), "{js}");
        assert!(js.contains("\"k_avg\":{\"mean\":1.5"), "{js}");
        assert!(js.contains("\"d_x\":[[1,{"), "{js}");
        // std report of a degenerate ensemble is all zeros
        assert_eq!(summary.std_report().scalar("k_avg"), Some(0.0));
    }

    #[test]
    fn empty_ensemble_is_empty_summary() {
        let summary = Analyzer::new().run_ensemble(0, 1, |_| builders::path(2));
        assert_eq!(summary.replicas, 0);
        assert!(summary.metrics.is_empty());
        assert!(summary.scalar("k_avg").is_none());
    }

    #[test]
    fn scalar_summary_of_sample() {
        let s = ScalarSummary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.mean, 2.0);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!((s.min, s.max, s.defined), (1.0, 3.0, 3));
        assert!(ScalarSummary::of(&[]).is_none());
    }
}

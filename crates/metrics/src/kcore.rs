//! k-core decomposition.
//!
//! The coreness of a node is the largest `k` such that it survives in the
//! `k`-core (the maximal subgraph of minimum degree ≥ k). Core structure
//! is a standard AS-topology fingerprint (a deep nested core is exactly
//! what distinguishes measured AS graphs from degree-matched random
//! ones), making it a useful independent check on dK convergence: it is
//! *not* one of the paper's §2 metrics, so matching it is evidence that
//! the dK-series captures "any future metrics" (§3), not just the
//! advertised list.
//!
//! Implemented with the linear-time Batagelj–Zaveršnik bucket algorithm,
//! generic over [`AdjacencyView`] so the peeling runs on the analyzer's
//! frozen CSR snapshot (the inner loop touches every neighbor list once —
//! exactly the access pattern CSR flattens).

use dk_graph::AdjacencyView;

/// Coreness of every node.
pub fn coreness<V: AdjacencyView + ?Sized>(g: &V) -> Vec<usize> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v as u32)).collect();
    let max_deg = *degree.iter().max().expect("non-empty");
    // bucket sort nodes by degree
    let mut bin_start = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin_start[d + 1] += 1;
    }
    for i in 1..bin_start.len() {
        bin_start[i] += bin_start[i - 1];
    }
    let mut pos = vec![0usize; n]; // position of node in `order`
    let mut order = vec![0u32; n]; // nodes sorted by current degree
    {
        let mut next = bin_start.clone();
        for v in 0..n {
            let d = degree[v];
            order[next[d]] = v as u32;
            pos[v] = next[d];
            next[d] += 1;
        }
    }
    let mut core = vec![0usize; n];
    for i in 0..n {
        let v = order[i];
        core[v as usize] = degree[v as usize];
        for &u in g.neighbors(v) {
            let du = degree[u as usize];
            if du > degree[v as usize] {
                // move u one bucket down: swap with the first element of
                // its bucket, then shrink the bucket
                let pu = pos[u as usize];
                let bucket_first = bin_start[du];
                let w = order[bucket_first];
                if u != w {
                    order.swap(pu, bucket_first);
                    pos[u as usize] = bucket_first;
                    pos[w as usize] = pu;
                }
                bin_start[du] += 1;
                degree[u as usize] -= 1;
            }
        }
    }
    core
}

/// Maximum coreness (the graph's degeneracy).
pub fn degeneracy<V: AdjacencyView + ?Sized>(g: &V) -> usize {
    coreness(g).into_iter().max().unwrap_or(0)
}

/// Number of nodes in each k-core: `sizes[k]` = |{v : coreness(v) ≥ k}|.
pub fn core_sizes<V: AdjacencyView + ?Sized>(g: &V) -> Vec<usize> {
    let core = coreness(g);
    let kmax = core.iter().copied().max().unwrap_or(0);
    let mut sizes = vec![0usize; kmax + 1];
    for c in core {
        for slot in &mut sizes[..=c] {
            *slot += 1;
        }
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::{builders, CsrGraph, Graph};

    #[test]
    fn complete_graph_core() {
        let g = builders::complete(6);
        assert_eq!(coreness(&g), vec![5; 6]);
        assert_eq!(degeneracy(&g), 5);
    }

    #[test]
    fn tree_is_one_core() {
        let g = builders::balanced_tree(3, 3);
        assert!(coreness(&g).iter().all(|&c| c == 1));
    }

    #[test]
    fn star_core() {
        let g = builders::star(7);
        let core = coreness(&g);
        assert_eq!(core[0], 1); // hub coreness = 1 (leaves peel first)
        assert!(core[1..].iter().all(|&c| c == 1));
    }

    #[test]
    fn clique_with_pendant_chain() {
        // K4 + path hanging off node 0: clique nodes coreness 3, chain 1.
        let mut g = builders::complete(4);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(0, a).unwrap();
        g.add_edge(a, b).unwrap();
        let core = coreness(&g);
        assert_eq!(&core[..4], &[3, 3, 3, 3]);
        assert_eq!(core[a as usize], 1);
        assert_eq!(core[b as usize], 1);
    }

    #[test]
    fn cycle_is_two_core() {
        assert_eq!(coreness(&builders::cycle(9)), vec![2; 9]);
    }

    #[test]
    fn core_sizes_monotone() {
        let g = builders::karate_club();
        let sizes = core_sizes(&g);
        assert_eq!(sizes[0], 34);
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1]);
        }
        // karate's degeneracy is 4 (known value)
        assert_eq!(degeneracy(&g), 4);
    }

    #[test]
    fn empty_graph() {
        assert!(coreness(&Graph::new()).is_empty());
        assert_eq!(degeneracy(&Graph::new()), 0);
    }

    #[test]
    fn csr_peeling_matches_graph_peeling() {
        for g in [builders::karate_club(), builders::star(7)] {
            let csr = CsrGraph::from_graph(&g);
            assert_eq!(coreness(&g), coreness(&csr));
            assert_eq!(degeneracy(&g), degeneracy(&csr));
            assert_eq!(core_sizes(&g), core_sizes(&csr));
        }
    }

    #[test]
    fn coreness_bounded_by_degree() {
        let g = builders::karate_club();
        let core = coreness(&g);
        for v in g.nodes() {
            assert!(core[v as usize] <= g.degree(v));
        }
    }

    #[test]
    fn peeling_oracle_small_random() {
        // brute-force oracle: repeatedly delete min-degree nodes
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let mut g = Graph::with_nodes(20);
            for _ in 0..40 {
                let u = rng.gen_range(0..20u32);
                let v = rng.gen_range(0..20u32);
                if u != v {
                    let _ = g.try_add_edge(u, v);
                }
            }
            let fast = coreness(&g);
            let slow = oracle_coreness(&g);
            assert_eq!(fast, slow);
        }
    }

    fn oracle_coreness(g: &Graph) -> Vec<usize> {
        let n = g.node_count();
        let mut core = vec![0usize; n];
        let mut alive = vec![true; n];
        let mut deg: Vec<usize> = g.degrees();
        for _round in 0..n {
            // peel at the current minimum alive degree
            let Some(&mind) = deg
                .iter()
                .zip(&alive)
                .filter(|(_, &a)| a)
                .map(|(d, _)| d)
                .min()
            else {
                break;
            };
            // all nodes of degree <= mind peel at level mind
            let mut changed = true;
            while changed {
                changed = false;
                for v in 0..n {
                    if alive[v] && deg[v] <= mind {
                        alive[v] = false;
                        core[v] = mind;
                        changed = true;
                        for &u in g.neighbors(v as u32) {
                            if alive[u as usize] {
                                deg[u as usize] -= 1;
                            }
                        }
                    }
                }
            }
        }
        core
    }
}

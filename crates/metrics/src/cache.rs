//! Shared-computation cache behind the [`Analyzer`](crate::analyzer::Analyzer).
//!
//! The legacy battery recomputed everything per metric: requesting the
//! distance distribution *and* betweenness meant two independent
//! all-source sweeps, and every clustering-family scalar re-ran the
//! triangle census. [`AnalysisCache::build`] instead unions the
//! [`Dep`]s of the selected metrics and computes each shared pass once:
//!
//! * **GCC extraction** happens once, up front (§5.2 of the paper: "We
//!   report all the metrics calculated for the giant connected
//!   component"); [`GccPolicy::Whole`] opts out.
//! * **One frozen [`CsrGraph`] snapshot** ([`Dep::Csr`]) of the analyzed
//!   graph backs every traversal-shaped pass — the fused traversal, the
//!   triangle census, the sampled estimator, and k-core peeling all read
//!   the same two flat arrays, so the O(n + m) snapshot cost is paid
//!   once per analyzer run.
//! * **Distances + betweenness** share one fused all-source traversal
//!   ([`crate::betweenness::betweenness_and_distances_csr`]) whenever
//!   both are requested — Brandes' BFS already knows every distance.
//! * **Triangles** are censused once for `c_mean`/`c_k`/`transitivity`.
//! * **Sampled traversal** ([`crate::sampled`]) runs once from
//!   [`AnalyzeOptions::samples`] pivots for the `*_approx` metrics.
//!   When no sampled-*betweenness* reader is selected the cache
//!   prepares the cheaper [`Dep::SampledDistances`] pass instead: the
//!   same pivots walked by the direction-optimizing
//!   [`dk_graph::traversal::bfs_visit`] kernel, skipping Brandes'
//!   σ/δ bookkeeping entirely (distance histograms are visit-order
//!   independent, so the reported scalars are bit-identical).
//! * **Neighborhood sketches** ([`crate::sketch`]) iterate once at
//!   [`AnalyzeOptions::sketch_bits`] register bits for the `*_sketch`
//!   metrics — every round a sharded pass over the same CSR snapshot.
//! * Each pass owns the full worker budget while it runs (the traversal
//!   parallelizes over BFS source shards via the deterministic
//!   scheduler); passes execute sequentially so an explicit `threads`
//!   cap is never oversubscribed.
//! * **Locality relabeling is opt-in and invisible**: under
//!   [`AnalyzeOptions::relabel`] the traversal-shaped passes read a
//!   private degree-descending snapshot
//!   ([`CsrGraph::from_graph_relabeled`]); sources are mapped into the
//!   permuted id space and every per-node output is inverse-permuted on
//!   the way out, so all reported values stay bit-identical to the
//!   unrelabeled route.
//! * **Large graphs stream**: once the analyzed graph exceeds
//!   [`stream::AUTO_STREAM_NODES`] (or when
//!   [`AnalyzeOptions::shards`]/[`AnalyzeOptions::memory_budget`] opt
//!   in), the traversal passes take the sharded streaming route of
//!   [`crate::stream`] — per-shard partials fold into `O(n)` reducers in
//!   shard order instead of being collected, bounding the working set by
//!   the worker count while staying bit-identical to the in-memory
//!   route.
//!
//! Metrics computed outside an [`Analyzer`](crate::analyzer::Analyzer)
//! run (no prepared dep) fall back to computing on demand, so
//! [`Metric::compute`](crate::metric::Metric::compute) is total either
//! way.

use crate::betweenness;
use crate::distance::{default_threads, DistanceDistribution};
use crate::metric::{AnyMetric, Dep};
use crate::sampled::{self, SampledDistances, SampledTraversal};
use crate::sketch::{self, HyperAnf};
use crate::stream::{self, ExecMode, ExecPlan};
use crate::{clustering, spectral};
use dk_graph::{traversal, CsrGraph, Graph};
use dk_linalg::laplacian::SpectralExtremes;
use std::borrow::Cow;

/// Fraction of the original `total` nodes retained by the extracted
/// GCC (`1.0` on an empty input, matching the historical convention).
fn retained_fraction(gcc: &Graph, total: usize) -> f64 {
    if total == 0 {
        1.0
    } else {
        gcc.node_count() as f64 / total as f64
    }
}

/// Whether metrics describe the giant connected component (the paper's
/// §5.2 convention, the default) or the whole input graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GccPolicy {
    /// Extract the GCC first; `gcc_fraction` reports the retained share.
    #[default]
    Extract,
    /// Analyze the graph as given (CLI `--no-gcc`).
    Whole,
}

/// Tuning knobs shared by the cache and the analyzer.
#[derive(Clone, Copy, Debug)]
pub struct AnalyzeOptions {
    /// GCC extraction policy.
    pub gcc: GccPolicy,
    /// Lanczos budget for spectral extremes above the dense cutoff.
    pub lanczos_iter: usize,
    /// Worker threads for shared passes and the metric fan-out
    /// (`0` = all cores). Any value produces identical results.
    pub threads: usize,
    /// Pivot sources for the sampled (`*_approx`) metrics — the
    /// Brandes–Pich K. Values `≥ n` make the sampled pass exact.
    pub samples: usize,
    /// Register bits `b` for the sketch (`*_sketch`) metrics — each
    /// node carries `2^b` HyperLogLog registers, error `1.04/√2^b`.
    /// Must lie in [`sketch::MIN_SKETCH_BITS`]`..=`[`sketch::MAX_SKETCH_BITS`]
    /// (the builder clamps, the CLI rejects).
    pub sketch_bits: u32,
    /// Cap on HyperANF rounds for the sketch pass; iteration stops
    /// earlier at the register fixpoint (full convergence).
    pub sketch_rounds: usize,
    /// Explicit source shard count for the traversal passes (`None` =
    /// [`stream::DEFAULT_SHARDS`]). Setting it opts into the streamed
    /// route under [`ExecMode::Auto`].
    pub shards: Option<usize>,
    /// Working-memory budget in bytes for the traversal passes: caps the
    /// worker count so `workers × per-worker scratch` stays under it
    /// (never below one worker). Setting it opts into the streamed route
    /// under [`ExecMode::Auto`].
    pub memory_budget: Option<u64>,
    /// Route the traversal-shaped passes (fused traversal, sampled,
    /// sketch) over a **degree-descending relabeled** CSR snapshot
    /// ([`CsrGraph::from_graph_relabeled`]) for cache locality. The
    /// permutation is carried explicitly and inverted on every output
    /// surface, so all reported values stay bit-identical to the
    /// unrelabeled route; the relabeled snapshot is private to those
    /// passes and never reaches [`AnalysisCache::csr`], triangles,
    /// k-core, spectral, or the attack sweep. Default `false`.
    pub relabel: bool,
    /// Route policy for the traversal passes — see [`stream::plan`].
    pub exec: ExecMode,
    /// Generation stamp of the graph this analysis reads. Long-lived
    /// holders (the `dk serve` registry) bump a per-graph epoch on every
    /// mutation and stamp it here at build time; comparing
    /// [`AnalysisCache::epoch`] against the current epoch makes a stale
    /// cache *detectable by construction* instead of silently reusable.
    /// Pure bookkeeping — no effect on any computed value. Default `0`.
    pub epoch: u64,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            gcc: GccPolicy::Extract,
            lanczos_iter: 300,
            threads: 0,
            samples: 64,
            sketch_bits: sketch::DEFAULT_SKETCH_BITS,
            sketch_rounds: sketch::DEFAULT_SKETCH_ROUNDS,
            shards: None,
            memory_budget: None,
            relabel: false,
            exec: ExecMode::Auto,
            epoch: 0,
        }
    }
}

/// One traversal's worth of shared all-pairs results.
struct TraversalData {
    distances: DistanceDistribution,
    /// Normalized node betweenness; `None` when only distances were
    /// requested.
    betweenness: Option<Vec<f64>>,
}

enum DepOut {
    Triangles(Vec<usize>),
    Traversal(TraversalData),
    Sampled(SampledTraversal),
    SampledDistances(SampledDistances),
    Sketch(HyperAnf),
    Spectral(Option<SpectralExtremes>),
}

/// Prepared per-graph state every [`Metric`](crate::metric::Metric)
/// computes from.
pub struct AnalysisCache<'g> {
    original_nodes: usize,
    original_edges: usize,
    target: Cow<'g, Graph>,
    gcc_fraction: f64,
    gcc_applied: bool,
    lanczos_iter: usize,
    threads: usize,
    samples: usize,
    sketch_bits: u32,
    sketch_rounds: usize,
    /// Resolved execution plan for the traversal passes (route, shard
    /// count, worker count).
    exec: ExecPlan,
    /// Generation stamp copied from [`AnalyzeOptions::epoch`] at build
    /// time (see there).
    epoch: u64,
    /// Frozen CSR snapshot of `target`, shared by every traversal-shaped
    /// pass ([`Dep::Csr`]).
    csr: Option<CsrGraph>,
    triangles: Option<Vec<usize>>,
    traversal: Option<TraversalData>,
    sampled: Option<SampledTraversal>,
    sampled_distances: Option<SampledDistances>,
    sketch: Option<HyperAnf>,
    /// `Some(None)` = computed but undefined (disconnected / too small).
    spectral: Option<Option<SpectralExtremes>>,
}

impl<'g> AnalysisCache<'g> {
    /// Prepares the cache for `metrics` over `g`: applies the GCC
    /// policy, then computes the union of the metrics' [`Dep`]s, one
    /// pass at a time (each pass owns the full thread budget
    /// internally), with distances and betweenness fused into one
    /// traversal when both are needed.
    pub fn build(g: &'g Graph, metrics: &[AnyMetric], opts: &AnalyzeOptions) -> Self {
        let (target, gcc_fraction, gcc_applied) = match opts.gcc {
            GccPolicy::Extract => {
                let (gcc, _) = traversal::giant_component(g);
                let fraction = retained_fraction(&gcc, g.node_count());
                (Cow::Owned(gcc), fraction, true)
            }
            GccPolicy::Whole => (Cow::Borrowed(g), 1.0, false),
        };
        Self::finish(
            g.node_count(),
            g.edge_count(),
            target,
            gcc_fraction,
            gcc_applied,
            metrics,
            opts,
        )
    }

    /// As [`AnalysisCache::build`], but takes the graph by value, so the
    /// cache borrows nothing — the `'static` lifetime long-lived holders
    /// need. The `dk serve` registry keeps one of these warm per graph
    /// (sharing the analyzed graph, the frozen CSR snapshot, and every
    /// prepared dep across requests) next to the epoch that stamps it.
    pub fn build_owned(
        g: Graph,
        metrics: &[AnyMetric],
        opts: &AnalyzeOptions,
    ) -> AnalysisCache<'static> {
        let original_nodes = g.node_count();
        let original_edges = g.edge_count();
        let (target, gcc_fraction, gcc_applied) = match opts.gcc {
            GccPolicy::Extract => {
                let (gcc, _) = traversal::giant_component(&g);
                let fraction = retained_fraction(&gcc, original_nodes);
                (Cow::Owned(gcc), fraction, true)
            }
            GccPolicy::Whole => (Cow::Owned(g), 1.0, false),
        };
        AnalysisCache::finish(
            original_nodes,
            original_edges,
            target,
            gcc_fraction,
            gcc_applied,
            metrics,
            opts,
        )
    }

    /// Shared tail of [`AnalysisCache::build`]/[`AnalysisCache::build_owned`]:
    /// unions the metrics' deps and computes each shared pass once.
    fn finish(
        original_nodes: usize,
        original_edges: usize,
        target: Cow<'g, Graph>,
        gcc_fraction: f64,
        gcc_applied: bool,
        metrics: &[AnyMetric],
        opts: &AnalyzeOptions,
    ) -> Self {
        let deps: Vec<Dep> = {
            let mut d: Vec<Dep> = metrics.iter().flat_map(|m| m.deps()).copied().collect();
            d.sort_unstable();
            d.dedup();
            d
        };
        let exec = stream::plan(target.node_count(), target.edge_count(), opts);
        let mut cache = AnalysisCache {
            original_nodes,
            original_edges,
            target,
            gcc_fraction,
            gcc_applied,
            lanczos_iter: opts.lanczos_iter,
            threads: opts.threads,
            samples: opts.samples,
            sketch_bits: opts.sketch_bits,
            sketch_rounds: opts.sketch_rounds,
            exec,
            epoch: opts.epoch,
            csr: None,
            triangles: None,
            traversal: None,
            sampled: None,
            sampled_distances: None,
            sketch: None,
            spectral: None,
        };

        #[derive(Clone, Copy)]
        enum Job {
            Triangles,
            Traversal { betweenness: bool },
            Sampled,
            SampledDistances,
            Sketch,
            Spectral,
        }
        let mut jobs: Vec<Job> = Vec::new();
        if deps.contains(&Dep::Triangles) {
            jobs.push(Job::Triangles);
        }
        if deps.contains(&Dep::Betweenness) {
            // the fused pass hands back distances for free
            jobs.push(Job::Traversal { betweenness: true });
        } else if deps.contains(&Dep::Distances) {
            jobs.push(Job::Traversal { betweenness: false });
        }
        if deps.contains(&Dep::Sampled) {
            // the fused pivot pass hands back the distance histogram for
            // free, so a separate distance-only job would be redundant
            jobs.push(Job::Sampled);
        } else if deps.contains(&Dep::SampledDistances) {
            // no sampled-betweenness reader: the distance-only pass rides
            // the direction-optimizing BFS instead of the Brandes kernel
            jobs.push(Job::SampledDistances);
        }
        if deps.contains(&Dep::Sketch) {
            jobs.push(Job::Sketch);
        }
        if deps.contains(&Dep::Spectral) {
            jobs.push(Job::Spectral);
        }
        // every traversal-shaped dep reads the shared CSR snapshot
        let needs_csr = deps.iter().any(|d| d.implies_csr());
        if jobs.is_empty() {
            if needs_csr {
                cache.csr = Some(CsrGraph::from_graph(cache.target.as_ref()));
            }
            return cache;
        }

        let target = cache.target.as_ref();
        let csr = needs_csr.then(|| CsrGraph::from_graph(target));
        // Opt-in locality relabeling: the traversal-shaped passes read a
        // private degree-descending snapshot whose permutation is
        // inverted on every output surface (sources mapped in, per-node
        // vectors mapped out), keeping all reported values bit-identical.
        // Triangles/spectral/[`AnalysisCache::csr`] keep the external
        // snapshot — its sorted-neighbor contract does not survive
        // relabeling.
        let relabeled = (opts.relabel
            && jobs.iter().any(|j| {
                matches!(
                    j,
                    Job::Traversal { .. } | Job::Sampled | Job::SampledDistances | Job::Sketch
                )
            }))
        .then(|| CsrGraph::from_graph_relabeled(target));
        let plan = cache.exec;
        // Passes run one after another; the heavy ones (traversal) use
        // the *full* worker budget internally, parallelizing over BFS
        // source shards. Running passes concurrently on top of that
        // would oversubscribe an explicit `threads` cap (and a memory
        // budget: `plan.workers` is what the budget capped).
        let snap = || csr.as_ref().expect("traversal jobs imply the CSR snapshot");
        let outs = jobs.iter().map(|job| match *job {
            Job::Triangles => DepOut::Triangles(clustering::triangles_per_node(snap())),
            Job::Traversal { betweenness: true } => {
                let fused = match &relabeled {
                    Some((rcsr, relab)) => betweenness::betweenness_and_distances_relabeled(
                        rcsr,
                        relab,
                        plan.shards,
                        plan.workers,
                        plan.streamed,
                    ),
                    None if plan.streamed => betweenness::betweenness_and_distances_streamed(
                        snap(),
                        plan.shards,
                        plan.workers,
                    ),
                    None => betweenness::betweenness_and_distances_sharded(
                        snap(),
                        plan.shards,
                        plan.workers,
                    ),
                };
                DepOut::Traversal(TraversalData {
                    distances: fused.distances,
                    betweenness: Some(betweenness::normalize_raw(
                        fused.betweenness,
                        target.node_count(),
                    )),
                })
            }
            Job::Traversal { betweenness: false } => DepOut::Traversal(TraversalData {
                distances: {
                    // histogram/eccentricity reducers are label-
                    // independent, so the plain entry points over the
                    // relabeled snapshot are already bit-identical
                    let dg = relabeled.as_ref().map(|(r, _)| r).unwrap_or_else(snap);
                    if plan.streamed {
                        DistanceDistribution::from_csr_streamed(dg, plan.shards, plan.workers)
                    } else {
                        DistanceDistribution::from_csr_sharded(dg, plan.shards, plan.workers)
                    }
                },
                betweenness: None,
            }),
            Job::Sampled => DepOut::Sampled(match &relabeled {
                Some((rcsr, relab)) => sampled::sampled_traversal_relabeled(
                    rcsr,
                    relab,
                    opts.samples,
                    plan.shards,
                    plan.workers,
                    plan.streamed,
                ),
                None if plan.streamed => sampled::sampled_traversal_streamed(
                    snap(),
                    opts.samples,
                    plan.shards,
                    plan.workers,
                ),
                None => sampled::sampled_traversal_sharded(
                    snap(),
                    opts.samples,
                    plan.shards,
                    plan.workers,
                ),
            }),
            Job::SampledDistances => DepOut::SampledDistances(match &relabeled {
                Some((rcsr, relab)) => sampled::sampled_distances_relabeled(
                    rcsr,
                    relab,
                    opts.samples,
                    plan.shards,
                    plan.workers,
                    plan.streamed,
                ),
                None if plan.streamed => sampled::sampled_distances_streamed(
                    snap(),
                    opts.samples,
                    plan.shards,
                    plan.workers,
                ),
                None => sampled::sampled_distances_sharded(
                    snap(),
                    opts.samples,
                    plan.shards,
                    plan.workers,
                ),
            }),
            Job::Sketch => DepOut::Sketch(match &relabeled {
                Some((rcsr, relab)) => sketch::hyper_anf_relabeled(
                    rcsr,
                    relab,
                    opts.sketch_bits,
                    opts.sketch_rounds,
                    plan.shards,
                    plan.workers,
                    plan.streamed,
                ),
                None if plan.streamed => sketch::hyper_anf_streamed(
                    snap(),
                    opts.sketch_bits,
                    opts.sketch_rounds,
                    plan.shards,
                    plan.workers,
                ),
                None => sketch::hyper_anf_sharded(
                    snap(),
                    opts.sketch_bits,
                    opts.sketch_rounds,
                    plan.shards,
                    plan.workers,
                ),
            }),
            Job::Spectral => DepOut::Spectral(if target.node_count() >= 2 {
                spectral::spectral_extremes_with(target, opts.lanczos_iter).ok()
            } else {
                None
            }),
        });
        for out in outs {
            match out {
                DepOut::Triangles(t) => cache.triangles = Some(t),
                DepOut::Traversal(t) => cache.traversal = Some(t),
                DepOut::Sampled(s) => cache.sampled = Some(s),
                DepOut::SampledDistances(s) => cache.sampled_distances = Some(s),
                DepOut::Sketch(s) => cache.sketch = Some(s),
                DepOut::Spectral(s) => cache.spectral = Some(s),
            }
        }
        cache.csr = csr;
        cache
    }

    /// A cache with no precomputed deps — metric computations fall back
    /// to on-demand evaluation. Used by the legacy one-shot entry points.
    pub fn bare(g: &'g Graph, opts: &AnalyzeOptions) -> Self {
        Self::build(g, &[], opts)
    }

    /// The analyzed graph (the GCC under [`GccPolicy::Extract`]).
    pub fn graph(&self) -> &Graph {
        self.target.as_ref()
    }

    /// Node count of the original (pre-GCC) input.
    pub fn original_nodes(&self) -> usize {
        self.original_nodes
    }

    /// Edge count of the original (pre-GCC) input.
    pub fn original_edges(&self) -> usize {
        self.original_edges
    }

    /// Fraction of original nodes retained (1.0 under [`GccPolicy::Whole`]).
    pub fn gcc_fraction(&self) -> f64 {
        self.gcc_fraction
    }

    /// Whether GCC extraction was applied.
    pub fn gcc_applied(&self) -> bool {
        self.gcc_applied
    }

    /// The resolved execution plan for the traversal passes: route
    /// (streamed vs in-memory), shard count, worker count. See
    /// [`stream::plan`] for the selection rules.
    pub fn exec_plan(&self) -> ExecPlan {
        self.exec
    }

    /// The generation stamp this cache was built at
    /// ([`AnalyzeOptions::epoch`]; `0` unless the builder set one).
    /// A holder that mutates its graph must bump its epoch, at which
    /// point `cache.epoch() != current_epoch` marks this cache stale.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn inner_threads(&self) -> usize {
        if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        }
    }

    /// The `samples` budget this cache was built with (pivot count for
    /// sampled passes; attack-sweep checkpoints reuse it).
    pub(crate) fn samples_budget(&self) -> usize {
        self.samples
    }

    /// The resolved worker-thread count (an explicit `threads` cap, or
    /// the machine default when unset).
    pub(crate) fn worker_threads(&self) -> usize {
        self.inner_threads()
    }

    /// The frozen CSR snapshot of the analyzed graph (cached when any
    /// traversal-shaped dep was prepared; built on demand otherwise).
    pub fn csr(&self) -> Cow<'_, CsrGraph> {
        match &self.csr {
            Some(c) => Cow::Borrowed(c),
            None => Cow::Owned(CsrGraph::from_graph(self.graph())),
        }
    }

    /// The sampled K-pivot traversal (cached or computed on demand with
    /// this cache's `samples` budget).
    pub fn sampled(&self) -> Cow<'_, SampledTraversal> {
        match &self.sampled {
            Some(s) => Cow::Borrowed(s),
            None => Cow::Owned(sampled::sampled_traversal_csr(
                self.csr().as_ref(),
                self.samples,
                self.inner_threads(),
            )),
        }
    }

    /// The sampled K-pivot distance histogram — the
    /// direction-optimizing BFS route. Reads the distance-only pass when
    /// that is what was prepared, falls back to the fused sampled
    /// traversal's histogram (identical integers by construction) when
    /// the Brandes pass ran instead, and computes on demand otherwise.
    pub fn sampled_distances(&self) -> Cow<'_, SampledDistances> {
        if let Some(d) = &self.sampled_distances {
            return Cow::Borrowed(d);
        }
        if let Some(s) = &self.sampled {
            return Cow::Owned(SampledDistances {
                distances: s.distances.clone(),
                sources: s.sources,
                max_depth: s.max_depth,
            });
        }
        Cow::Owned(sampled::sampled_distances_csr(
            self.csr().as_ref(),
            self.samples,
            self.inner_threads(),
        ))
    }

    /// The HyperANF sketch iteration (cached or computed on demand with
    /// this cache's `sketch_bits`/`sketch_rounds` budget).
    pub fn sketch(&self) -> Cow<'_, HyperAnf> {
        match &self.sketch {
            Some(s) => Cow::Borrowed(s),
            None => Cow::Owned(sketch::hyper_anf_csr(
                self.csr().as_ref(),
                self.sketch_bits,
                self.sketch_rounds,
                self.inner_threads(),
            )),
        }
    }

    /// Per-node triangle counts (cached or computed on demand).
    pub fn triangles(&self) -> Cow<'_, [usize]> {
        match &self.triangles {
            Some(t) => Cow::Borrowed(t.as_slice()),
            None => Cow::Owned(clustering::triangles_per_node(self.graph())),
        }
    }

    /// Exact distance distribution (cached or computed on demand).
    pub fn distances(&self) -> Cow<'_, DistanceDistribution> {
        match &self.traversal {
            Some(t) => Cow::Borrowed(&t.distances),
            None => Cow::Owned(DistanceDistribution::from_graph_with_threads(
                self.graph(),
                self.inner_threads(),
            )),
        }
    }

    /// Normalized node betweenness (cached or computed on demand).
    pub fn betweenness(&self) -> Cow<'_, [f64]> {
        match &self.traversal {
            Some(TraversalData {
                betweenness: Some(b),
                ..
            }) => Cow::Borrowed(b.as_slice()),
            _ => {
                let fused = betweenness::betweenness_and_distances_with_threads(
                    self.graph(),
                    self.inner_threads(),
                );
                Cow::Owned(betweenness::normalize_raw(
                    fused.betweenness,
                    self.graph().node_count(),
                ))
            }
        }
    }

    /// Spectral extremes; `None` when undefined on this graph
    /// (fewer than 2 nodes, disconnected under [`GccPolicy::Whole`], or
    /// solver failure).
    pub fn spectral(&self) -> Option<SpectralExtremes> {
        match &self.spectral {
            Some(s) => *s,
            None => {
                if self.graph().node_count() >= 2 {
                    spectral::spectral_extremes_with(self.graph(), self.lanczos_iter).ok()
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::MetricValue;
    use dk_graph::builders;

    fn metrics(names: &str) -> Vec<AnyMetric> {
        AnyMetric::parse_list(names).unwrap()
    }

    #[test]
    fn gcc_policy_extract_vs_whole() {
        let mut g = builders::path(4);
        g.add_node();
        g.add_node();
        let opts = AnalyzeOptions::default();
        let cache = AnalysisCache::build(&g, &[], &opts);
        assert_eq!(cache.graph().node_count(), 4);
        assert!((cache.gcc_fraction() - 4.0 / 6.0).abs() < 1e-12);
        assert!(cache.gcc_applied());
        assert_eq!(cache.original_nodes(), 6);

        let whole = AnalysisCache::build(
            &g,
            &[],
            &AnalyzeOptions {
                gcc: GccPolicy::Whole,
                ..opts
            },
        );
        assert_eq!(whole.graph().node_count(), 6);
        assert_eq!(whole.gcc_fraction(), 1.0);
        assert!(!whole.gcc_applied());
    }

    #[test]
    fn cached_deps_match_on_demand_fallback() {
        let g = builders::karate_club();
        let opts = AnalyzeOptions {
            threads: 1,
            ..Default::default()
        };
        let warm = AnalysisCache::build(
            &g,
            &metrics("c_mean,d_avg,b_max,lambda1,avg_distance_sketch"),
            &opts,
        );
        let cold = AnalysisCache::bare(&g, &opts);
        assert_eq!(warm.triangles(), cold.triangles());
        assert_eq!(warm.distances(), cold.distances());
        assert_eq!(warm.betweenness(), cold.betweenness());
        assert_eq!(warm.sketch(), cold.sketch());
        assert_eq!(
            warm.spectral().map(|s| s.lambda1),
            cold.spectral().map(|s| s.lambda1)
        );
    }

    #[test]
    fn fused_traversal_serves_both_families() {
        let g = builders::karate_club();
        let opts = AnalyzeOptions {
            threads: 1,
            ..Default::default()
        };
        let cache = AnalysisCache::build(&g, &metrics("d_avg,b_max"), &opts);
        // both deps present without recomputation: the traversal slot
        // holds distances AND betweenness
        assert!(cache.traversal.as_ref().unwrap().betweenness.is_some());
        assert_eq!(
            cache.distances().as_ref(),
            &DistanceDistribution::from_graph_with_threads(&g, 1)
        );
        assert_eq!(
            cache.betweenness().as_ref(),
            betweenness::normalized_betweenness(&g).as_slice()
        );
    }

    #[test]
    fn distance_only_request_skips_betweenness() {
        let g = builders::cycle(8);
        let cache = AnalysisCache::build(&g, &metrics("d_avg"), &AnalyzeOptions::default());
        assert!(cache.traversal.as_ref().unwrap().betweenness.is_none());
    }

    #[test]
    fn relabel_option_is_invisible_in_every_cached_dep() {
        let g = builders::karate_club();
        // b_max_approx keeps the fused Brandes pivot pass in the battery
        // next to the distance-only pass d_avg_approx now rides
        let names = "c_mean,d_avg,b_max,d_avg_approx,b_max_approx,avg_distance_sketch";
        let base = AnalyzeOptions {
            threads: 2,
            samples: 8,
            ..Default::default()
        };
        for exec in [ExecMode::InMemory, ExecMode::Streamed] {
            let plain = AnalysisCache::build(&g, &metrics(names), &AnalyzeOptions { exec, ..base });
            let rel = AnalysisCache::build(
                &g,
                &metrics(names),
                &AnalyzeOptions {
                    relabel: true,
                    exec,
                    ..base
                },
            );
            assert_eq!(plain.distances(), rel.distances(), "{exec:?}");
            assert_eq!(plain.betweenness(), rel.betweenness(), "{exec:?}");
            assert_eq!(plain.sampled(), rel.sampled(), "{exec:?}");
            assert_eq!(
                plain.sampled_distances(),
                rel.sampled_distances(),
                "{exec:?}"
            );
            assert_eq!(plain.sketch(), rel.sketch(), "{exec:?}");
            assert_eq!(plain.triangles(), rel.triangles(), "{exec:?}");
            // the public CSR snapshot stays external either way
            assert_eq!(plain.csr().as_ref(), rel.csr().as_ref(), "{exec:?}");
        }
    }

    #[test]
    fn distance_only_battery_skips_brandes_and_matches_the_fused_value() {
        // d_avg_approx without a sampled-betweenness reader prepares the
        // direction-optimized distance-only pass (no fused pivot pass in
        // the cache) — and reports the exact same scalar, relabeled or not
        let g = builders::karate_club();
        let base = AnalyzeOptions {
            threads: 2,
            samples: 8,
            ..Default::default()
        };
        let metric = AnyMetric::get("d_avg_approx").unwrap();
        for exec in [ExecMode::InMemory, ExecMode::Streamed] {
            let both = AnalysisCache::build(
                &g,
                &metrics("d_avg_approx,b_max_approx"),
                &AnalyzeOptions { exec, ..base },
            );
            assert!(both.sampled.is_some());
            assert!(both.sampled_distances.is_none());
            for relabel in [false, true] {
                let dist_only = AnalysisCache::build(
                    &g,
                    &metrics("d_avg_approx"),
                    &AnalyzeOptions {
                        relabel,
                        exec,
                        ..base
                    },
                );
                assert!(dist_only.sampled.is_none(), "{exec:?}");
                assert!(dist_only.sampled_distances.is_some(), "{exec:?}");
                assert_eq!(
                    metric.compute(&dist_only),
                    metric.compute(&both),
                    "{exec:?}, relabel = {relabel}"
                );
            }
        }
    }

    #[test]
    fn spectral_undefined_below_two_nodes() {
        let g = builders::path(1);
        let cache = AnalysisCache::build(&g, &metrics("lambda1"), &AnalyzeOptions::default());
        assert!(cache.spectral().is_none());
        assert_eq!(
            AnyMetric::get("lambda1").unwrap().compute(&cache),
            MetricValue::Undefined
        );
    }
}

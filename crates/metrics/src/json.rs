//! Minimal hand-rolled JSON emission.
//!
//! The workspace builds offline with no serde (dropped in PR 1); report
//! serialization needs exactly three things — escaped strings, finite
//! numbers, and assembled objects/arrays — so they are written by hand
//! here and shared by [`crate::report`] and [`crate::analyzer`].

/// Escapes a string for use inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value: shortest round-trip representation
/// for finite numbers, `null` for NaN/infinities (JSON has no encoding
/// for them).
pub fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Joins already-serialized members into a JSON object.
pub fn object(fields: impl IntoIterator<Item = (String, String)>) -> String {
    let body: Vec<String> = fields
        .into_iter()
        .map(|(k, v)| format!("\"{}\":{v}", escape(&k)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Joins already-serialized members into a JSON array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let body: Vec<String> = items.into_iter().collect();
    format!("[{}]", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(-0.25), "-0.25");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        // round-trips exactly
        assert_eq!(number(0.1).parse::<f64>().unwrap(), 0.1);
    }

    #[test]
    fn containers() {
        assert_eq!(object([("a".to_string(), "1".to_string())]), "{\"a\":1}");
        assert_eq!(array(["1".into(), "2".into()]), "[1,2]");
        assert_eq!(object([]), "{}");
        assert_eq!(array([]), "[]");
    }
}

//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no access to crates.io, so this shim stands
//! in for the real criterion: it runs each benchmark closure
//! `sample_size` times, reports min/mean wall-clock per iteration, and
//! supports the `criterion_group!` / `criterion_main!` entry points and
//! the `bench_with_input` / `iter` / `iter_batched` surface the workspace
//! uses. No statistics, plots, or baseline comparisons — timings print to
//! stdout only. Bench targets must set `harness = false`, exactly as with
//! the real crate.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim times setup and
/// routine separately regardless, so the variants are equivalent here.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotation (printed, not analyzed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            total += dt;
            best = best.min(dt);
        }
        report(self.samples, best, total);
    }

    /// Times `routine` on fresh inputs from `setup` (setup excluded).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed();
            total += dt;
            best = best.min(dt);
        }
        report(self.samples, best, total);
    }
}

fn report(samples: usize, best: Duration, total: Duration) {
    let mean = total / samples.max(1) as u32;
    println!(
        "    time: [best {}  mean {}]  ({} samples)",
        fmt_duration(best),
        fmt_duration(mean),
        samples
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        println!("bench: {name}");
        let mut b = Bencher {
            samples: self.sample_size,
        };
        f(&mut b);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration throughput (printed only).
    pub fn throughput(&mut self, t: Throughput) {
        println!("  throughput: {t:?}");
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` against a shared input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("  bench: {}/{}", self.name, id.id);
        let mut b = Bencher {
            samples: self.criterion.sample_size,
        };
        f(&mut b, input);
    }

    /// Benchmarks a closure without an explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        println!("  bench: {}/{}", self.name, id.id);
        let mut b = Bencher {
            samples: self.criterion.sample_size,
        };
        f(&mut b);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(8));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("batched", 8), &8u64, |b, &n| {
            b.iter_batched(
                || vec![1u64; n as usize],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn group_and_bencher_run() {
        benches();
    }
}

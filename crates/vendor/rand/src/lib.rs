//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace has no network access and no
//! vendored crates.io registry, so the real `rand` cannot be fetched.
//! This shim implements exactly the slice of the 0.8 API the workspace
//! uses — [`Rng::gen_range`], [`Rng::gen_bool`], [`Rng::gen`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`] — on top of xoshiro256++ (seeded via
//! SplitMix64), which passes the usual statistical batteries.
//!
//! Determinism contract: like the workspace's fixed-seed discipline, the
//! same seed always yields the same stream, on every platform. The stream
//! differs from upstream `rand`'s ChaCha12-based `StdRng` — all tests in
//! this workspace assert *self*-consistency and statistics, never
//! upstream-exact values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable RNG constructors.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a single `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — the standard seed expander for xoshiro generators.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform f64 in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn uniformly from a half-open or closed range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as u128 - lo as u128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from an empty range");
                // multiply-shift bounded draw (bias < 2^-64, irrelevant here)
                let draw = ((rng.next_u64() as u128 * span) >> 64) as u128;
                lo + draw as $t
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = ((hi as i128 - lo as i128) + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample from an empty range");
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi || (_inclusive && lo <= hi), "cannot sample from an empty range");
                let u = unit_f64(rng) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Value distributions for [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of the type.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for u64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range (`lo..hi` or `lo..=hi`).
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self) < p
    }

    /// Draw from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0u64;
        const N: u64 = 100_000;
        for _ in 0..N {
            let x = rng.gen_range(0..10u32);
            assert!(x < 10);
            sum += x as u64;
        }
        let mean = sum as f64 / N as f64;
        assert!((mean - 4.5).abs() < 0.05, "mean {mean}");
        // inclusive ranges reach the upper bound
        let mut saw_hi = false;
        for _ in 0..1000 {
            if rng.gen_range(0u8..=3) == 3 {
                saw_hi = true;
            }
        }
        assert!(saw_hi);
    }

    #[test]
    fn float_ranges_and_unit() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn signed_ranges() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_range(3u32..3);
    }
}

//! Sequence helpers (`SliceRandom`).

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move things"
        );
    }

    #[test]
    fn shuffle_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(7));
        b.shuffle(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn choose_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let empty: [u32; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let v = [5u32];
        assert_eq!(v.choose(&mut rng), Some(&5));
    }
}

//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna).
///
/// Fast, 256-bit state, passes BigCrush/PractRand at the lengths used
/// here. Seeded from a single `u64` via SplitMix64 expansion, which
/// guarantees a nonzero state for every seed.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonzero_state_for_zero_seed() {
        let mut rng = StdRng::seed_from_u64(0);
        // must not be the all-zero fixed point
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }
}

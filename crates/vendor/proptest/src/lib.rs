//! Offline, API-compatible subset of `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`, range and
//! tuple strategies, [`collection::vec`], `prop_assert!` /
//! `prop_assert_eq!`, and [`test_runner::Config`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs via the assertion message only), and the case RNG is seeded
//! deterministically from the test name, so failures reproduce exactly on
//! re-run.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Each entry is a `#[test]` function whose
/// arguments are drawn from strategies: `fn name(x in strat, ...) { .. }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::rng_for(stringify!($name));
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // the closure gives `prop_assert!`'s `return Err(..)` a scope
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, cfg.cases, e
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Property assertion: on failure returns a `TestCaseError` from the
/// enclosing property body (usable only inside [`proptest!`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assert_eq failed: {:?} vs {:?}", lhs, rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assert_eq failed: {:?} vs {:?} — {}", lhs, rhs, format!($($fmt)*)
        );
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(*lhs != *rhs, "assert_ne failed: both {:?}", lhs);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0u32..10, y in 0u8..=3) {
            prop_assert!(x < 10);
            prop_assert!(y <= 3);
        }

        #[test]
        fn vec_and_tuple_strategies(v in crate::collection::vec((0u32..5, 0u32..5), 0..8)) {
            prop_assert!(v.len() < 8);
            for (a, b) in v {
                prop_assert!(a < 5 && b < 5);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_is_respected(_x in 0u64..1000) {
            // runs 3 cases; nothing to assert beyond not panicking
        }
    }

    #[test]
    fn prop_map_applies() {
        use crate::strategy::Strategy;
        let strat = (0u32..10).prop_map(|x| x * 2);
        let mut rng = crate::test_runner::rng_for("prop_map_applies");
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }
}

//! Test-runner configuration and errors.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

impl Config {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

/// Failure of a single property case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-test RNG: seeded from an FNV-1a hash of the test
/// name, so every run of a given test sees the same case sequence.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: SampleUniform + Clone> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + Clone> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

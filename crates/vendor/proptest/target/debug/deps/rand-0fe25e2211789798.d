/root/repo/crates/vendor/proptest/target/debug/deps/rand-0fe25e2211789798.d: /root/repo/crates/vendor/rand/src/lib.rs /root/repo/crates/vendor/rand/src/rngs.rs /root/repo/crates/vendor/rand/src/seq.rs

/root/repo/crates/vendor/proptest/target/debug/deps/librand-0fe25e2211789798.rlib: /root/repo/crates/vendor/rand/src/lib.rs /root/repo/crates/vendor/rand/src/rngs.rs /root/repo/crates/vendor/rand/src/seq.rs

/root/repo/crates/vendor/proptest/target/debug/deps/librand-0fe25e2211789798.rmeta: /root/repo/crates/vendor/rand/src/lib.rs /root/repo/crates/vendor/rand/src/rngs.rs /root/repo/crates/vendor/rand/src/seq.rs

/root/repo/crates/vendor/rand/src/lib.rs:
/root/repo/crates/vendor/rand/src/rngs.rs:
/root/repo/crates/vendor/rand/src/seq.rs:

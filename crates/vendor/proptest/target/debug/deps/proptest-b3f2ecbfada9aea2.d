/root/repo/crates/vendor/proptest/target/debug/deps/proptest-b3f2ecbfada9aea2.d: src/lib.rs src/collection.rs src/strategy.rs src/test_runner.rs

/root/repo/crates/vendor/proptest/target/debug/deps/proptest-b3f2ecbfada9aea2: src/lib.rs src/collection.rs src/strategy.rs src/test_runner.rs

src/lib.rs:
src/collection.rs:
src/strategy.rs:
src/test_runner.rs:

// GOOD: deterministic maps, and a HashMap mention in a comment (plus
// one in a string) that must not fire.
use dk_graph::hashers::{det_hash_map, DetHashMap};

pub fn degree_census(edges: &[(u32, u32)]) -> DetHashMap<u32, u32> {
    let mut out = det_hash_map();
    for &(u, v) in edges {
        *out.entry(u).or_insert(0) += 1;
        *out.entry(v).or_insert(0) += 1;
    }
    let _doc = "a std HashMap or HashSet here would be nondeterministic";
    out
}

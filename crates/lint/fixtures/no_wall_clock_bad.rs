// BAD: wall-clock reads outside crates/bench.
pub fn elapsed_sketch() -> u128 {
    let t0 = std::time::Instant::now();
    let _epoch = std::time::SystemTime::now();
    t0.elapsed().as_nanos()
}

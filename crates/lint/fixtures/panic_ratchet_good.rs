// GOOD: structured errors instead of panics; the only `.unwrap()` and
// `panic!` spellings live in this comment and the string below.
pub fn head(xs: &[u32]) -> Result<u32, String> {
    xs.first()
        .copied()
        .ok_or_else(|| "empty input: refusing to .unwrap() or panic!".to_string())
}

// GOOD: the reduction carries a waiver citing the equivalence test
// that locks its merge order.
pub fn shard_total(partials: &[f64]) -> f64 {
    // lint: allow(ordered-float-merge) — partials arrive in shard order via run_fold; locked by stream_equivalence
    partials.iter().sum::<f64>()
}

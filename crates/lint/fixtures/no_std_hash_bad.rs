// BAD: std hash collections iterate in a per-process random order.
use std::collections::{HashMap, HashSet};

pub fn degree_census(edges: &[(u32, u32)]) -> HashMap<u32, u32> {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut out = HashMap::new();
    for &(u, v) in edges {
        seen.insert(u);
        seen.insert(v);
        *out.entry(u).or_insert(0) += 1;
        *out.entry(v).or_insert(0) += 1;
    }
    out
}

// BAD: three broken waivers — no reason, unknown rule, and one that
// suppresses nothing.
pub fn f() {
    // lint: allow(no-entropy)
    let _rng = rand::thread_rng();
    // lint: allow(no-such-rule) — covered by some test
    let _x = 1;
}

// lint: allow(no-wall-clock) — nothing here reads a clock, so this waiver is unused; see any test
pub fn g() {}

// GOOD: no clock reads; the mentions live in a comment (Instant) and a
// string (SystemTime), which the lexer blanks.
pub fn label() -> &'static str {
    "SystemTime is forbidden outside crates/bench"
}

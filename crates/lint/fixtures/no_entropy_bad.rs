// BAD: OS-entropy seeding — three different spellings.
pub fn scramble(xs: &mut [u32]) {
    let mut rng = rand::thread_rng();
    let _alt = rand::rngs::StdRng::from_entropy();
    let mut buf = [0u8; 8];
    getrandom(&mut buf);
    let _ = (&mut rng, xs);
}

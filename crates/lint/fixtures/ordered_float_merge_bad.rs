// BAD: unordered f64 reductions with no allowlist entry or waiver.
pub fn mean_degree(degrees: &[u32]) -> f64 {
    let mut total = 0.0f64;
    for &d in degrees {
        total += d as f64;
    }
    total / degrees.len() as f64
}

pub fn second_moment(degrees: &[f64]) -> f64 {
    degrees.iter().map(|d| d * d).sum::<f64>()
}

//! GOOD: doc tables agree with the registry and the Cost labels.
//!
//! | name | kind | cost |
//! |------|------|------|
//! | `n`, `m` | scalar | trivial |
//! | `r` | scalar | linear |
//!
//! | cost | route |
//! |------|-------|
//! | `trivial` | counters |
//! | `linear` | single pass |

pub enum Cost {
    Trivial,
    Linear,
}

impl Cost {
    pub const fn name(self) -> &'static str {
        match self {
            Cost::Trivial => "trivial",
            Cost::Linear => "linear",
        }
    }
}

pub struct Def {
    pub name: &'static str,
    pub aliases: &'static [&'static str],
}

static REGISTRY: &[Def] = &[
    Def {
        name: "n",
        aliases: &["nodes"],
    },
    Def {
        name: "m",
        aliases: &[],
    },
    Def {
        name: "r",
        aliases: &["assortativity"],
    },
];

pub fn default_set() -> Vec<&'static str> {
    ["n", "m", "assortativity"].to_vec()
}

pub fn cheap_set() -> Vec<&'static str> {
    ["n", "nodes"].to_vec()
}

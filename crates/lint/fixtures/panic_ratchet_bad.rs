// BAD: three panic sites against the fixture's implicit baseline of 0.
pub fn head(xs: &[u32]) -> u32 {
    let first = xs.first().unwrap();
    let last = xs.last().expect("nonempty");
    if first > last {
        panic!("unsorted");
    }
    *first
}

// GOOD: explicit seeding only.
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn replica_rng(master: u64, replica: u64) -> StdRng {
    StdRng::seed_from_u64(dk_graph::ensemble::derive_seed(master, replica))
}

//! BAD: the registry table names a ghost metric and omits `r`, the
//! route table omits `linear`, and `default_set` names an unregistered
//! metric.
//!
//! | name | kind | cost |
//! |------|------|------|
//! | `n`, `ghost` | scalar | trivial |
//!
//! | cost | route |
//! |------|-------|
//! | `trivial` | counters |

pub enum Cost {
    Trivial,
    Linear,
}

impl Cost {
    pub const fn name(self) -> &'static str {
        match self {
            Cost::Trivial => "trivial",
            Cost::Linear => "linear",
        }
    }
}

pub struct Def {
    pub name: &'static str,
    pub aliases: &'static [&'static str],
}

static REGISTRY: &[Def] = &[
    Def {
        name: "n",
        aliases: &[],
    },
    Def {
        name: "r",
        aliases: &[],
    },
];

pub fn default_set() -> Vec<&'static str> {
    ["n", "bogus"].to_vec()
}

//! GOOD: a crate root carrying the attribute.

#![forbid(unsafe_code)]

pub fn answer() -> u32 {
    42
}

//! The per-rule fixture corpus: every `*_bad.*` file under
//! `crates/lint/fixtures/` must produce at least one finding of its
//! rule (with a usable `file:line` position), and every `*_good.*`
//! twin must produce none — exercised twice, through the library API
//! and through the `dk-lint` binary, so the CLI exit-code contract is
//! pinned as well.

use dk_lint::rules::{self, Context};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn ctx() -> Context {
    Context {
        known_tests: vec!["stream_equivalence".to_string()],
        baseline: Default::default(),
    }
}

/// `no_std_hash_bad.rs` → `no-std-hash`.
fn expected_rule(stem: &str) -> String {
    let cut = stem
        .find("_bad")
        .or_else(|| stem.find("_good"))
        .expect("fixture names end in _bad/_good");
    stem[..cut].replace('_', "-")
}

fn fixture_paths(suffix: &str) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures dir exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| {
            p.file_stem()
                .is_some_and(|s| s.to_string_lossy().contains(suffix))
        })
        .collect();
    out.sort();
    assert!(!out.is_empty(), "no {suffix} fixtures found");
    out
}

fn scan(path: &Path) -> (Vec<rules::Finding>, usize) {
    let name = path.file_name().expect("file name").to_string_lossy();
    let contents = std::fs::read_to_string(path).expect("fixture readable");
    if name.ends_with(".jsonl") {
        (rules::bench_log_findings(&name, &contents), 0)
    } else {
        rules::scan_file(&name, &contents, &ctx(), false)
    }
}

#[test]
fn every_bad_fixture_fires_its_rule() {
    for path in fixture_paths("_bad") {
        let stem = path
            .file_stem()
            .expect("stem")
            .to_string_lossy()
            .into_owned();
        let (findings, panics) = scan(&path);
        if stem.starts_with("panic_ratchet") {
            assert!(panics > 0, "{stem}: expected panic sites");
            continue;
        }
        // prefix match: `forbid_unsafe_bad_lib` → rule `forbid-unsafe-drift`
        let want = expected_rule(&stem);
        assert!(
            findings.iter().any(|f| f.rule.starts_with(&want)),
            "{stem}: expected a `{want}` finding, got {findings:?}"
        );
        for f in &findings {
            assert!(f.line >= 1, "{stem}: finding without a line: {f:?}");
            assert!(!f.file.is_empty(), "{stem}: finding without a file: {f:?}");
        }
    }
}

#[test]
fn every_good_fixture_is_clean() {
    for path in fixture_paths("_good") {
        let stem = path
            .file_stem()
            .expect("stem")
            .to_string_lossy()
            .into_owned();
        let (findings, panics) = scan(&path);
        assert!(
            findings.is_empty(),
            "{stem}: unexpected findings {findings:?}"
        );
        if stem.starts_with("panic_ratchet") {
            assert_eq!(panics, 0, "{stem}: expected zero panic sites");
        }
    }
}

#[test]
fn unused_and_malformed_waivers_are_findings() {
    let (findings, _) = scan(&fixtures_dir().join("waiver_syntax_bad.rs"));
    assert!(findings.iter().any(|f| f.rule == rules::WAIVER_SYNTAX));
    assert!(findings.iter().any(|f| f.rule == rules::UNUSED_WAIVER));
    // a malformed waiver must not suppress the finding it points at
    assert!(findings.iter().any(|f| f.rule == rules::NO_ENTROPY));
}

/// The binary contract from the acceptance criteria: nonzero exit plus
/// a `file:line:` diagnostic on every bad fixture, exit 0 on every
/// good one.
#[test]
fn binary_exit_codes_match_fixture_polarity() {
    let exe = env!("CARGO_BIN_EXE_dk-lint");
    for path in fixture_paths("_bad") {
        let out = Command::new(exe)
            .arg(&path)
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .expect("dk-lint runs");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            !out.status.success(),
            "{}: expected nonzero exit, stderr:\n{stderr}",
            path.display()
        );
        let name = path.file_name().expect("name").to_string_lossy();
        let diag = format!("{name}:");
        assert!(
            stderr.lines().any(|l| l.contains(&diag)),
            "{name}: no file:line diagnostic in stderr:\n{stderr}"
        );
    }
    for path in fixture_paths("_good") {
        let out = Command::new(exe)
            .arg(&path)
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .expect("dk-lint runs");
        assert!(
            out.status.success(),
            "{}: expected exit 0, stderr:\n{}",
            path.display(),
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

/// `--workspace` from the binary agrees with the library pass used by
/// `tests/lint_clean.rs` (both clean on this repo).
#[test]
fn binary_workspace_pass_is_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_dk-lint"))
        .arg("--workspace")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("dk-lint runs");
    assert!(
        out.status.success(),
        "workspace not lint-clean:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

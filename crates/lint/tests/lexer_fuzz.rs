//! Property tests for the lexical stripper: it must never panic and
//! always terminate on arbitrary input, preserve the char count and
//! line structure exactly (rule positions map 1:1 onto the original
//! file), and be idempotent — stripping a code view changes nothing.

use dk_lint::lexer::strip;
use proptest::prelude::*;

/// Fragments chosen to collide token boundaries: quote flavors, raw
/// string fences, comment openers/closers, escapes, lifetimes.
const TOKENS: &[&str] = &[
    "\"",
    "'",
    "\\",
    "//",
    "/*",
    "*/",
    "\n",
    " ",
    "r",
    "b",
    "#",
    "r#\"",
    "\"#",
    "b'x'",
    "'a",
    "'a'",
    "ident",
    "HashMap",
    ".unwrap()",
    "0.5",
    "+=",
    "r\"",
    "b\"",
    "lint: allow(",
    ")",
    "—",
    "/",
    "*",
    "!",
    "é",
    "∑",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255u8, 0..400)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let s = strip(&src);
        prop_assert_eq!(s.code.chars().count(), src.chars().count());
        prop_assert_eq!(s.code.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn token_soup_round_trips(picks in proptest::collection::vec(0usize..30, 0..80)) {
        let src: String = picks.iter().map(|&i| TOKENS[i % TOKENS.len()]).collect();
        let once = strip(&src);
        prop_assert_eq!(once.code.chars().count(), src.chars().count());
        prop_assert_eq!(once.code.matches('\n').count(), src.matches('\n').count());
        // Idempotence: a code view re-stripped is unchanged (and holds
        // no comments for waiver parsing to misread).
        let twice = strip(&once.code);
        prop_assert_eq!(&twice.code, &once.code);
        prop_assert!(twice.comments.is_empty());
    }
}

//! # dk-lint — the workspace determinism auditor
//!
//! Every result in this reproduction rests on bit-for-bit
//! reproducibility contracts (identical output across thread counts,
//! shard counts, and in-memory/streamed routes — see `DESIGN.md` and
//! the `csr_equivalence` / `stream_equivalence` / `sketch_tolerance`
//! harnesses). Those contracts are enforced *after the fact* by
//! equivalence tests; `dk-lint` enforces them **at the source level**,
//! before any test runs, by scanning the workspace for the constructs
//! that historically introduce silent nondeterminism:
//!
//! * std `HashMap`/`HashSet` (random iteration order) — [`rules::NO_STD_HASH`];
//! * wall-clock reads outside the bench crate — [`rules::NO_WALL_CLOCK`];
//! * OS-entropy RNG seeding — [`rules::NO_ENTROPY`];
//! * crate roots missing `#![forbid(unsafe_code)]` — [`rules::FORBID_UNSAFE_DRIFT`];
//! * unordered f64 reductions in traversal crates — [`rules::ORDERED_FLOAT_MERGE`];
//! * panic-site growth vs `baseline.toml` — [`rules::PANIC_RATCHET`];
//! * metric doc tables drifting from the registry — [`rules::DOC_DRIFT`];
//! * bench-log lines that stop being valid JSON — [`rules::BENCH_LOG`].
//!
//! The full catalogue — invariant, rationale, waiver protocol, and the
//! test that backs each rule — lives in `LINTS.md` at the workspace
//! root.
//!
//! The crate is **dependency-free**: [`lexer`] is a hand-rolled Rust
//! lexical stripper producing a comment/string-blanked *code view* (so
//! rules never fire in docs), [`jsonchk`] is a minimal recursive-descent
//! JSON reader for the bench log, and [`rules`] is the engine with
//! per-rule allowlists and the `// lint: allow(<rule>) — <reason>`
//! waiver syntax.
//!
//! Two entry points run the same pass: the `dk-lint` binary
//! (`cargo run -p dk-lint -- --workspace`, CI gate) and the
//! `tests/lint_clean.rs` integration test (tier-1 gate), so there is no
//! CI-only blind spot.

#![forbid(unsafe_code)]

pub mod jsonchk;
pub mod lexer;
pub mod rules;

pub use rules::{run_workspace, Context, Finding};

//! The determinism rule engine.
//!
//! Each rule encodes an invariant the workspace's reproducibility
//! contracts already depend on (see `LINTS.md` at the workspace root
//! for the catalogue: invariant, rationale, waiver protocol, and the
//! equivalence test backing each rule). Rules scan the **code view**
//! produced by [`crate::lexer`] — never comments or string literals —
//! and report [`Finding`]s with `file:line` positions.
//!
//! ## Waivers
//!
//! A token rule can be waived at a single site with a comment on the
//! offending line or the line directly above:
//!
//! ```text
//! // lint: allow(no-wall-clock) — progress display only; covered by cli_end_to_end
//! ```
//!
//! The reason is mandatory and must cite a test (a `tests/*.rs` stem or
//! the word "test") that pins the behavior the waiver exempts — a
//! waiver without a covering test is itself a finding
//! ([`WAIVER_SYNTAX`]), and a waiver that suppresses nothing is flagged
//! as [`UNUSED_WAIVER`] so stale escapes cannot accumulate. Structural
//! rules (`forbid-unsafe-drift`, `panic-ratchet`, `doc-drift`) are not
//! waivable: their escape hatches are the committed baseline and the
//! doc/table fix itself.

use crate::lexer::{self, Stripped};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Rule: `std::collections::{HashMap, HashSet}` forbidden outside the
/// deterministic-hashing module — std's per-process random hasher seed
/// makes iteration order differ between runs, which breaks seeded
/// reproducibility anywhere a map is iterated while making choices.
pub const NO_STD_HASH: &str = "no-std-hash";
/// Rule: `Instant::now` / `SystemTime` forbidden outside `crates/bench`
/// (and the vendored criterion shim) — wall-clock reads are inherently
/// run-dependent.
pub const NO_WALL_CLOCK: &str = "no-wall-clock";
/// Rule: `thread_rng` / `from_entropy` / `getrandom` / `OsRng`
/// forbidden everywhere — every RNG must be seeded from an explicit,
/// recorded seed.
pub const NO_ENTROPY: &str = "no-entropy";
/// Rule: every crate root must carry `#![forbid(unsafe_code)]`.
pub const FORBID_UNSAFE_DRIFT: &str = "forbid-unsafe-drift";
/// Rule: floating-point reducers in `dk-graph` / `dk-metrics` must live
/// in a file on the ordered-merge allowlist (whose merges are anchored
/// at `ensemble::run_fold`'s job-order fold and locked by an
/// equivalence test) or carry a waiver citing the covering test.
pub const ORDERED_FLOAT_MERGE: &str = "ordered-float-merge";
/// Rule: `.unwrap()` / `.expect(` / `panic!` counts per library-crate
/// file may only decrease relative to `crates/lint/baseline.toml`.
pub const PANIC_RATCHET: &str = "panic-ratchet";
/// Rule: the `metric.rs` module-doc registry/route tables and the
/// hardcoded metric-set name arrays must agree with the registry
/// parsed from source.
pub const DOC_DRIFT: &str = "doc-drift";
/// Rule: malformed waiver comment (unparsable, unknown rule, missing
/// or non-test-citing reason).
pub const WAIVER_SYNTAX: &str = "waiver-syntax";
/// Rule: a waiver that suppressed no finding.
pub const UNUSED_WAIVER: &str = "unused-waiver";
/// Rule: a bench-log line failed the JSON-lines schema check.
pub const BENCH_LOG: &str = "bench-log";

/// Every rule name, for `allow(...)` validation and listings.
pub const ALL_RULES: &[&str] = &[
    NO_STD_HASH,
    NO_WALL_CLOCK,
    NO_ENTROPY,
    FORBID_UNSAFE_DRIFT,
    ORDERED_FLOAT_MERGE,
    PANIC_RATCHET,
    DOC_DRIFT,
    WAIVER_SYNTAX,
    UNUSED_WAIVER,
    BENCH_LOG,
];

/// Files allowed to contain f64 reducers, each anchored by the ordered
/// merge design and the test that locks it (see `LINTS.md`). Paths are
/// workspace-relative.
const ORDERED_MERGE_ALLOW: &[(&str, &str)] = &[
    (
        "crates/graph/src/ensemble.rs",
        "run_fold merges job outputs in strict job order; ensemble::tests::run_fold_matches_collect_then_merge",
    ),
    (
        "crates/graph/src/layout.rs",
        "serial coordinate/mass accumulation for SVG rendering only; cli_end_to_end",
    ),
    (
        "crates/metrics/src/betweenness.rs",
        "Brandes partials merge per shard in shard order; stream_equivalence + csr_equivalence",
    ),
    (
        "crates/metrics/src/distance.rs",
        "distance histograms merge per shard in shard order; stream_equivalence",
    ),
    (
        "crates/metrics/src/sketch.rs",
        "registers are integer max-merges; N(t) sums run sequentially in node order; sketch_tolerance",
    ),
    (
        "crates/metrics/src/analyzer.rs",
        "ensemble summary statistics fold replica reports in replica order; analyzer_golden",
    ),
    (
        "crates/metrics/src/clustering.rs",
        "serial per-node sums, no parallel reduction; analyzer_golden",
    ),
    (
        "crates/metrics/src/likelihood.rs",
        "serial edge/wedge scan, no parallel reduction; maxent + analyzer_golden",
    ),
    (
        "crates/metrics/src/jdd.rs",
        "serial edge scan, no parallel reduction; analyzer_golden",
    ),
];

/// One diagnostic. Rendered as `file:line: [rule] message`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule name (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Human explanation with the remedy.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Scan context: what the waiver-citation check accepts as a test
/// reference, and the committed panic-ratchet baseline.
#[derive(Clone, Debug, Default)]
pub struct Context {
    /// Integration-test stems (`stream_equivalence`, …). A waiver
    /// reason must contain one of these or the word "test".
    pub known_tests: Vec<String>,
    /// `file → allowed panic-site count` from `baseline.toml`.
    pub baseline: BTreeMap<String, usize>,
}

/// A parsed `lint: allow(...)` waiver.
#[derive(Clone, Debug)]
struct Waiver {
    line: usize,
    rule: String,
    used: bool,
}

/// Scans one file. `scoped` selects workspace path scoping (true for
/// `--workspace`; false for fixtures/ad-hoc files, where every token
/// rule applies regardless of path). Returns per-file findings with
/// waivers already applied, plus the file's panic-site count for the
/// workspace-level ratchet.
pub fn scan_file(rel: &str, raw: &str, ctx: &Context, scoped: bool) -> (Vec<Finding>, usize) {
    let stripped = lexer::strip(raw);
    let mut findings = Vec::new();
    let mut waivers = parse_waivers(rel, &stripped, ctx, &mut findings);

    token_rules(rel, &stripped, scoped, &mut findings);

    let base = file_name(rel);
    if base == "lib.rs" || base.ends_with("_lib.rs") {
        crate_root_rule(rel, &stripped, &mut findings);
    }
    if base == "metric.rs" || base.ends_with("_metric.rs") {
        doc_drift_rule(rel, raw, &mut findings);
    }

    // Apply waivers: a finding is suppressed by a matching-rule waiver
    // on its line or the line above.
    findings.retain(|f| {
        for w in waivers.iter_mut() {
            if w.rule == f.rule && (w.line == f.line || w.line + 1 == f.line) {
                w.used = true;
                return false;
            }
        }
        true
    });
    for w in &waivers {
        if !w.used {
            findings.push(Finding {
                file: rel.to_string(),
                line: w.line,
                rule: UNUSED_WAIVER,
                msg: format!(
                    "waiver for `{}` suppresses nothing on this or the next line — remove it",
                    w.rule
                ),
            });
        }
    }

    let panics = count_panic_sites(&stripped.code);
    (findings, panics)
}

fn file_name(rel: &str) -> &str {
    rel.rsplit('/').next().unwrap_or(rel)
}

/// Parses every `lint: allow(rule) — reason` comment; malformed ones
/// become [`WAIVER_SYNTAX`] findings instead of waivers.
fn parse_waivers(
    rel: &str,
    stripped: &Stripped,
    ctx: &Context,
    findings: &mut Vec<Finding>,
) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in &stripped.comments {
        // Only a comment *starting* with `lint:` is a waiver — a doc
        // line quoting the syntax keeps its inner `//` (see the lexer)
        // and so never matches.
        let Some(body) = c.text.strip_prefix("lint:") else {
            continue;
        };
        let body = body.trim();
        let bad = |msg: String| Finding {
            file: rel.to_string(),
            line: c.line,
            rule: WAIVER_SYNTAX,
            msg,
        };
        let Some(rest) = body.strip_prefix("allow(") else {
            findings.push(bad(
                "waiver must read `lint: allow(<rule>) — <reason citing a test>`".to_string(),
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(bad("waiver is missing the closing `)`".to_string()));
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !ALL_RULES.contains(&rule.as_str()) {
            findings.push(bad(format!(
                "waiver names unknown rule `{rule}` — known rules: {}",
                ALL_RULES.join(", ")
            )));
            continue;
        }
        let reason = rest[close + 1..]
            .trim_start_matches(['—', '-', ':', ' ', '\u{2014}'])
            .trim();
        let cites_test = !reason.is_empty()
            && (reason.contains("test") || ctx.known_tests.iter().any(|t| reason.contains(t)));
        if !cites_test {
            findings.push(bad(format!(
                "waiver for `{rule}` must give a reason citing the test that covers it \
                 (a tests/*.rs stem)"
            )));
            continue;
        }
        out.push(Waiver {
            line: c.line,
            rule,
            used: false,
        });
    }
    out
}

/// The per-line token rules: no-std-hash, no-wall-clock, no-entropy,
/// ordered-float-merge.
fn token_rules(rel: &str, stripped: &Stripped, scoped: bool, findings: &mut Vec<Finding>) {
    let hash_exempt = scoped && rel == "crates/graph/src/hashers.rs";
    let clock_exempt =
        scoped && (rel.starts_with("crates/bench/") || rel.starts_with("crates/vendor/criterion/"));
    let merge_in_scope =
        !scoped || rel.starts_with("crates/graph/src/") || rel.starts_with("crates/metrics/src/");
    let merge_allowed = scoped && ORDERED_MERGE_ALLOW.iter().any(|&(p, _)| p == rel);

    for (idx, line) in stripped.code.lines().enumerate() {
        let lineno = idx + 1;
        let mut push = |rule: &'static str, msg: String| {
            findings.push(Finding {
                file: rel.to_string(),
                line: lineno,
                rule,
                msg,
            });
        };

        if !hash_exempt {
            for ident in ["HashMap", "HashSet"] {
                if !lexer::find_ident(line, ident).is_empty() {
                    push(
                        NO_STD_HASH,
                        format!(
                            "std `{ident}` iterates in a per-process random order, breaking \
                             seeded reproducibility — use `dk_graph::hashers::Det{ident}`"
                        ),
                    );
                }
            }
        }

        if !clock_exempt {
            for ident in ["Instant", "SystemTime", "UNIX_EPOCH"] {
                if !lexer::find_ident(line, ident).is_empty() {
                    push(
                        NO_WALL_CLOCK,
                        format!(
                            "`{ident}` reads the wall clock — timing belongs in crates/bench; \
                             library results must be pure functions of their inputs"
                        ),
                    );
                }
            }
        }

        for ident in ["thread_rng", "from_entropy", "getrandom", "OsRng"] {
            if !lexer::find_ident(line, ident).is_empty() {
                push(
                    NO_ENTROPY,
                    format!(
                        "`{ident}` seeds from OS entropy — every RNG must derive from an \
                         explicit seed (`StdRng::seed_from_u64`, `ensemble::derive_seed`)"
                    ),
                );
            }
        }

        if merge_in_scope && !merge_allowed && is_float_reduction(line) {
            push(
                ORDERED_FLOAT_MERGE,
                "f64 reduction in a traversal crate: float addition is non-associative, so \
                 merge order must be fixed (fold through `ensemble::run_fold` in job order) — \
                 add the file to the ordered-merge allowlist in crates/lint/src/rules.rs with \
                 its covering equivalence test, or waive citing that test"
                    .to_string(),
            );
        }
    }
}

/// `true` if a code-view line contains an f64 reduction: an explicit
/// `.sum::<f64>()`, or a `+=` whose line mentions `f64` or a float
/// literal. (A lexical heuristic: integer `+=` lines fire on neither.)
fn is_float_reduction(line: &str) -> bool {
    if line.contains(".sum::<f64>()") {
        return true;
    }
    if !line.contains("+=") {
        return false;
    }
    if !lexer::find_ident(line, "f64").is_empty() {
        return true;
    }
    // float literal: digit '.' digit
    let chars: Vec<char> = line.chars().collect();
    chars
        .windows(3)
        .any(|w| w[0].is_ascii_digit() && w[1] == '.' && w[2].is_ascii_digit())
}

/// Counts `.unwrap()` / `.expect(` / `panic!` sites in a code view.
pub fn count_panic_sites(code: &str) -> usize {
    // These pattern literals live in strings, which the lexer blanks —
    // so dk-lint's own source does not inflate its own count.
    [".unwrap()", ".expect(", "panic!"]
        .iter()
        .map(|pat| code.matches(pat).count())
        .sum()
}

/// forbid-unsafe-drift: a crate root must carry `#![forbid(unsafe_code)]`.
fn crate_root_rule(rel: &str, stripped: &Stripped, findings: &mut Vec<Finding>) {
    let squashed: String = stripped
        .code
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect();
    if !squashed.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding {
            file: rel.to_string(),
            line: 1,
            rule: FORBID_UNSAFE_DRIFT,
            msg: "crate root lacks `#![forbid(unsafe_code)]` — every workspace crate \
                  forbids unsafe so sanitizer runs stay meaningful; add the attribute"
                .to_string(),
        });
    }
}

/// doc-drift: parses the metric registry, the `Cost::name` labels, the
/// two module-doc tables, and the hardcoded set arrays out of
/// `metric.rs` source, and cross-checks them.
fn doc_drift_rule(rel: &str, raw: &str, findings: &mut Vec<Finding>) {
    let mut push = |line: usize, msg: String| {
        findings.push(Finding {
            file: rel.to_string(),
            line,
            rule: DOC_DRIFT,
            msg,
        });
    };

    let names = registry_field_strings(raw, "name:");
    if names.is_empty() {
        push(
            1,
            "could not find `static REGISTRY` metric names".to_string(),
        );
        return;
    }
    let aliases = registry_alias_strings(raw);
    let costs = cost_labels(raw);
    let tables = doc_tables(raw);

    // 1. The registry table (header first cell "name") must name
    //    exactly the registered metrics.
    if let Some(t) = tables.iter().find(|t| t.header_first == "name") {
        for n in &names {
            if !t.tokens.contains(n) {
                push(
                    t.line,
                    format!(
                        "metric `{n}` is registered but missing from the module-doc \
                         registry table"
                    ),
                );
            }
        }
        for tok in &t.tokens {
            if !names.contains(tok) {
                push(
                    t.line,
                    format!("registry table names `{tok}`, which is not a registered metric"),
                );
            }
        }
    } else {
        push(
            1,
            "module docs lack the registry table (header `| name | …`)".to_string(),
        );
    }

    // 2. The route table (header first cell "cost") must name exactly
    //    the Cost classes.
    if let Some(t) = tables.iter().find(|t| t.header_first == "cost") {
        for c in &costs {
            if !t.tokens.contains(c) {
                push(
                    t.line,
                    format!("cost class `{c}` is missing from the route/memory doc table"),
                );
            }
        }
        for tok in &t.tokens {
            if !costs.contains(tok) {
                push(
                    t.line,
                    format!("route table names `{tok}`, which is not a Cost class label"),
                );
            }
        }
    } else if !costs.is_empty() {
        push(
            1,
            "module docs lack the route table (header `| cost | route | …`)".to_string(),
        );
    }

    // 3. The hardcoded set arrays may only name registered metrics (a
    //    rename would otherwise panic at first use, not at lint time).
    for set_fn in ["fn default_set", "fn cheap_set"] {
        for (line, s) in fn_array_strings(raw, set_fn) {
            if !names.contains(&s) && !aliases.contains(&s) {
                push(
                    line,
                    format!(
                        "`{set_fn}` names `{s}`, which is neither a registered metric \
                         nor an alias"
                    ),
                );
            }
        }
    }
}

/// String values of `field "..."` occurrences between `static REGISTRY`
/// and the closing `];`.
fn registry_field_strings(raw: &str, field: &str) -> Vec<String> {
    let Some(start) = raw.find("static REGISTRY") else {
        return Vec::new();
    };
    let region = match raw[start..].find("];") {
        Some(end) => &raw[start..start + end],
        None => &raw[start..],
    };
    let mut out = Vec::new();
    for line in region.lines() {
        if let Some(rest) = find_field(line, field) {
            if let Some(s) = quoted(rest) {
                out.push(s);
            }
        }
    }
    out
}

/// Rest of `line` after a `field` occurrence that starts on an
/// identifier boundary (`name:` must not match `display_name:`).
fn find_field<'a>(line: &'a str, field: &str) -> Option<&'a str> {
    let mut from = 0usize;
    while let Some(off) = line[from..].find(field) {
        let pos = from + off;
        let boundary = line[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        if boundary {
            return Some(&line[pos + field.len()..]);
        }
        from = pos + field.len();
    }
    None
}

/// All alias strings: `aliases: &["a", "b"]` lines in the registry.
fn registry_alias_strings(raw: &str) -> Vec<String> {
    let Some(start) = raw.find("static REGISTRY") else {
        return Vec::new();
    };
    let region = match raw[start..].find("];") {
        Some(end) => &raw[start..start + end],
        None => &raw[start..],
    };
    let mut out = Vec::new();
    for line in region.lines() {
        if let Some(rest) = find_field(line, "aliases:") {
            out.extend(all_quoted(rest));
        }
    }
    out
}

/// Labels from `Cost::X => "label"` match arms.
fn cost_labels(raw: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in raw.lines() {
        if line.contains("Cost::") && line.contains("=> \"") {
            if let Some(at) = line.find("=> \"") {
                if let Some(s) = quoted(&line[at + 3..]) {
                    out.push(s);
                }
            }
        }
    }
    out
}

/// One markdown table from the module docs.
struct DocTable {
    /// 1-based line of the header row.
    line: usize,
    /// First header cell, lowercased.
    header_first: String,
    /// Backticked tokens from the first cell of every data row.
    tokens: Vec<String>,
}

/// Extracts every `//! | … |` table: groups of consecutive doc-comment
/// table rows.
fn doc_tables(raw: &str) -> Vec<DocTable> {
    let mut tables = Vec::new();
    let mut current: Option<DocTable> = None;
    for (idx, line) in raw.lines().enumerate() {
        let t = line.trim_start();
        let row = t
            .strip_prefix("//!")
            .map(str::trim_start)
            .filter(|r| r.starts_with('|'));
        match row {
            Some(r) => {
                let first_cell = r
                    .trim_start_matches('|')
                    .split('|')
                    .next()
                    .unwrap_or("")
                    .trim()
                    .to_string();
                if first_cell.chars().all(|c| c == '-' || c.is_whitespace()) {
                    continue; // separator row
                }
                match current.as_mut() {
                    None => {
                        current = Some(DocTable {
                            line: idx + 1,
                            header_first: first_cell.to_lowercase(),
                            tokens: Vec::new(),
                        })
                    }
                    Some(table) => table.tokens.extend(backticked(&first_cell)),
                }
            }
            None => {
                if let Some(t) = current.take() {
                    tables.push(t);
                }
            }
        }
    }
    if let Some(t) = current.take() {
        tables.push(t);
    }
    tables
}

/// Quoted strings inside the first `[...]` array literal after `marker`.
fn fn_array_strings(raw: &str, marker: &str) -> Vec<(usize, String)> {
    let Some(fn_at) = raw.find(marker) else {
        return Vec::new();
    };
    let tail = &raw[fn_at..];
    let Some(open) = tail.find('[') else {
        return Vec::new();
    };
    let Some(close) = tail[open..].find(']') else {
        return Vec::new();
    };
    let base_line = raw[..fn_at + open].lines().count().max(1);
    let body = &tail[open..open + close];
    let mut out = Vec::new();
    for (i, line) in body.lines().enumerate() {
        for s in all_quoted(line) {
            out.push((base_line + i, s));
        }
    }
    out
}

/// First `"…"` payload in `s`.
fn quoted(s: &str) -> Option<String> {
    let open = s.find('"')?;
    let close = s[open + 1..].find('"')?;
    Some(s[open + 1..open + 1 + close].to_string())
}

/// Every `"…"` payload in `s`.
fn all_quoted(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = s;
    while let Some(open) = rest.find('"') {
        let Some(close) = rest[open + 1..].find('"') else {
            break;
        };
        out.push(rest[open + 1..open + 1 + close].to_string());
        rest = &rest[open + 1 + close + 1..];
    }
    out
}

/// All `` `…` `` tokens in `s`.
fn backticked(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = s;
    while let Some(open) = rest.find('`') {
        let Some(close) = rest[open + 1..].find('`') else {
            break;
        };
        let tok = rest[open + 1..open + 1 + close].trim();
        if !tok.is_empty() {
            out.push(tok.to_string());
        }
        rest = &rest[open + 1 + close + 1..];
    }
    out
}

/// Crates whose files ride the panic ratchet: the library crates (plus
/// dk-lint itself). Bench mains and the vendored shims are exempt —
/// a bench that panics fails loudly in CI, and the shims are frozen.
const RATCHET_SCOPE: &[&str] = &[
    "crates/graph/src/",
    "crates/linalg/src/",
    "crates/metrics/src/",
    "crates/mcmc/src/",
    "crates/core/src/",
    "crates/topologies/src/",
    "crates/cli/src/",
    "crates/lint/src/",
    "crates/json/src/",
    "crates/serve/src/",
];

/// `true` if `rel` is ratcheted.
pub fn in_ratchet_scope(rel: &str) -> bool {
    RATCHET_SCOPE.iter().any(|p| rel.starts_with(p))
}

/// Compares measured per-file panic counts against the committed
/// baseline. Any mismatch is a finding: an increase is a regression; a
/// decrease must be locked in with `--write-baseline` so the slack
/// cannot be silently re-spent later.
pub fn ratchet_findings(counts: &BTreeMap<String, usize>, ctx: &Context) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (file, &count) in counts {
        match ctx.baseline.get(file) {
            Some(&allowed) if count > allowed => findings.push(Finding {
                file: file.clone(),
                line: 1,
                rule: PANIC_RATCHET,
                msg: format!(
                    "{count} panic sites (.unwrap()/.expect(/panic!), baseline allows \
                     {allowed} — return a structured error (GraphError-style) instead \
                     of panicking"
                ),
            }),
            Some(&allowed) if count < allowed => findings.push(Finding {
                file: file.clone(),
                line: 1,
                rule: PANIC_RATCHET,
                msg: format!(
                    "{count} panic sites, down from the baseline's {allowed} — lock the \
                     improvement in with `cargo run -p dk-lint -- --write-baseline`"
                ),
            }),
            Some(_) => {}
            None if count > 0 => findings.push(Finding {
                file: file.clone(),
                line: 1,
                rule: PANIC_RATCHET,
                msg: format!(
                    "{count} panic sites in a file absent from crates/lint/baseline.toml — \
                     run `cargo run -p dk-lint -- --write-baseline` and justify the new \
                     sites in review"
                ),
            }),
            None => {}
        }
    }
    for file in ctx.baseline.keys() {
        if !counts.contains_key(file) {
            findings.push(Finding {
                file: "crates/lint/baseline.toml".to_string(),
                line: 1,
                rule: PANIC_RATCHET,
                msg: format!(
                    "stale baseline entry for `{file}` (file gone or out of ratchet \
                     scope) — run `cargo run -p dk-lint -- --write-baseline`"
                ),
            });
        }
    }
    findings
}

/// Parses `baseline.toml`: a `[panics]` table of `"path" = count`.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut out = BTreeMap::new();
    let mut in_panics = false;
    for (idx, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if t.starts_with('[') {
            in_panics = t == "[panics]";
            continue;
        }
        if !in_panics {
            continue;
        }
        let (key, value) = t
            .split_once('=')
            .ok_or_else(|| format!("baseline.toml:{}: expected `\"path\" = count`", idx + 1))?;
        let key = key.trim().trim_matches('"').to_string();
        let value: usize = value
            .trim()
            .parse()
            .map_err(|e| format!("baseline.toml:{}: bad count: {e}", idx + 1))?;
        out.insert(key, value);
    }
    Ok(out)
}

/// Renders a baseline file from measured counts (sorted, stable).
pub fn render_baseline(counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(
        "# panic-ratchet baseline: allowed `.unwrap()` / `.expect(` / `panic!` sites\n\
         # per library-crate file. Counts may only go down; regenerate after a\n\
         # burn-down with: cargo run -p dk-lint -- --write-baseline\n\
         # (see LINTS.md, rule `panic-ratchet`)\n\n[panics]\n",
    );
    for (file, count) in counts {
        if *count > 0 {
            out.push_str(&format!("\"{file}\" = {count}\n"));
        }
    }
    out
}

/// Scans a bench log file's contents into findings.
pub fn bench_log_findings(rel: &str, contents: &str) -> Vec<Finding> {
    crate::jsonchk::check_bench_log(contents)
        .into_iter()
        .map(|(line, msg)| Finding {
            file: rel.to_string(),
            line,
            rule: BENCH_LOG,
            msg,
        })
        .collect()
}

/// Recursively collects workspace-relative paths of `.rs` files under
/// `root`'s scanned directories (`src`, `crates`, `tests`, `examples`),
/// skipping build output, VCS metadata, and dk-lint's own rule
/// fixtures (which are violations *by design*).
pub fn collect_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for top in ["src", "crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let iter = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in iter {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Builds the default [`Context`] for a workspace: test stems from
/// `tests/` and `crates/*/tests/`, baseline from
/// `crates/lint/baseline.toml` (missing file = empty baseline, so a
/// fresh checkout reports rather than errors).
pub fn workspace_context(root: &Path) -> Context {
    let mut known_tests = Vec::new();
    let mut test_dirs = vec![root.join("tests")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            test_dirs.push(e.path().join("tests"));
        }
    }
    for dir in test_dirs {
        if let Ok(entries) = std::fs::read_dir(dir) {
            for e in entries.flatten() {
                let name = e.file_name();
                let name = name.to_string_lossy();
                if let Some(stem) = name.strip_suffix(".rs") {
                    known_tests.push(stem.to_string());
                }
            }
        }
    }
    known_tests.sort();
    let baseline = std::fs::read_to_string(root.join("crates/lint/baseline.toml"))
        .ok()
        .and_then(|t| parse_baseline(&t).ok())
        .unwrap_or_default();
    Context {
        known_tests,
        baseline,
    }
}

/// The full `--workspace` pass: every rule over every scanned file,
/// findings sorted by position.
pub fn run_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let ctx = workspace_context(root);
    let files = collect_files(root)?;
    let mut findings = Vec::new();
    let mut panic_counts: BTreeMap<String, usize> = BTreeMap::new();
    for rel in &files {
        let raw = std::fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"))?;
        let (mut file_findings, panics) = scan_file(rel, &raw, &ctx, true);
        findings.append(&mut file_findings);
        if in_ratchet_scope(rel) {
            panic_counts.insert(rel.clone(), panics);
        }
    }
    findings.extend(ratchet_findings(&panic_counts, &ctx));
    findings.sort();
    Ok(findings)
}

/// Measured panic counts for every ratcheted file (the
/// `--write-baseline` input).
pub fn measure_panics(root: &Path) -> Result<BTreeMap<String, usize>, String> {
    let mut counts = BTreeMap::new();
    for rel in collect_files(root)? {
        if !in_ratchet_scope(&rel) {
            continue;
        }
        let raw = std::fs::read_to_string(root.join(&rel)).map_err(|e| format!("{rel}: {e}"))?;
        let stripped = lexer::strip(&raw);
        counts.insert(rel, count_panic_sites(&stripped.code));
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context {
            known_tests: vec!["stream_equivalence".to_string()],
            baseline: BTreeMap::new(),
        }
    }

    #[test]
    fn std_hash_fires_outside_hashers() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32>; }\n";
        let (f, _) = scan_file("crates/core/src/x.rs", src, &ctx(), true);
        assert!(f.iter().filter(|f| f.rule == NO_STD_HASH).count() >= 2);
        let (f, _) = scan_file("crates/graph/src/hashers.rs", src, &ctx(), true);
        assert!(f.iter().all(|f| f.rule != NO_STD_HASH));
    }

    #[test]
    fn det_hash_map_does_not_fire() {
        let src = "use dk_graph::hashers::DetHashMap;\nfn f(m: DetHashMap<u32, u32>) {}\n";
        let (f, _) = scan_file("crates/core/src/x.rs", src, &ctx(), true);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn mentions_in_comments_and_strings_do_not_fire() {
        let src = "// a HashMap would break this\nfn f() { let s = \"Instant::now\"; }\n";
        let (f, _) = scan_file("crates/core/src/x.rs", src, &ctx(), true);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn clock_allowed_only_in_bench() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let (f, _) = scan_file("crates/metrics/src/x.rs", src, &ctx(), true);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, NO_WALL_CLOCK);
        assert_eq!(f[0].line, 1);
        let (f, _) = scan_file("crates/bench/src/bin/perf.rs", src, &ctx(), true);
        assert!(f.is_empty());
    }

    #[test]
    fn entropy_has_no_allowlist() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
        let (f, _) = scan_file("crates/bench/src/x.rs", src, &ctx(), true);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, NO_ENTROPY);
    }

    #[test]
    fn float_merge_heuristic() {
        assert!(is_float_reduction("let s = v.iter().sum::<f64>();"));
        assert!(is_float_reduction("acc += x as f64;"));
        assert!(is_float_reduction("total += 0.5 * w;"));
        assert!(!is_float_reduction("count += 1;"));
        assert!(!is_float_reduction("i += step;"));
        assert!(!is_float_reduction("let s: f64 = v.iter().sum();")); // untyped sum: miss, by design
    }

    #[test]
    fn float_merge_respects_allowlist_and_waivers() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n";
        let (f, _) = scan_file("crates/metrics/src/newpass.rs", src, &ctx(), true);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, ORDERED_FLOAT_MERGE);
        // allowlisted file
        let (f, _) = scan_file("crates/metrics/src/distance.rs", src, &ctx(), true);
        assert!(f.is_empty());
        // out of scope entirely
        let (f, _) = scan_file("crates/core/src/x.rs", src, &ctx(), true);
        assert!(f.is_empty());
        // waived, citing a known test
        let waived = "fn f(xs: &[f64]) -> f64 {\n    // lint: allow(ordered-float-merge) — serial; stream_equivalence\n    xs.iter().sum::<f64>()\n}\n";
        let (f, _) = scan_file("crates/metrics/src/newpass.rs", waived, &ctx(), true);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn waiver_syntax_is_policed() {
        // no reason at all
        let src = "// lint: allow(no-entropy)\nfn f() { thread_rng(); }\n";
        let (f, _) = scan_file("crates/core/src/x.rs", src, &ctx(), true);
        assert!(f.iter().any(|f| f.rule == WAIVER_SYNTAX));
        assert!(
            f.iter().any(|f| f.rule == NO_ENTROPY),
            "bad waiver must not suppress"
        );
        // unknown rule
        let src = "// lint: allow(no-such-rule) — tests cover it\n";
        let (f, _) = scan_file("crates/core/src/x.rs", src, &ctx(), true);
        assert!(f.iter().any(|f| f.rule == WAIVER_SYNTAX));
        // unused waiver
        let src = "// lint: allow(no-entropy) — covered by stream_equivalence\nfn f() {}\n";
        let (f, _) = scan_file("crates/core/src/x.rs", src, &ctx(), true);
        assert!(f.iter().any(|f| f.rule == UNUSED_WAIVER));
    }

    #[test]
    fn panic_sites_are_counted_in_code_only() {
        let code = lexer::strip(
            "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"b\");\n// .unwrap() in a comment\nlet s = \".expect(\"; }",
        );
        assert_eq!(count_panic_sites(&code.code), 3);
        assert_eq!(count_panic_sites("x.unwrap_or(1); expect_err();"), 0);
    }

    #[test]
    fn ratchet_reports_all_directions() {
        let mut counts = BTreeMap::new();
        counts.insert("crates/graph/src/a.rs".to_string(), 3);
        counts.insert("crates/graph/src/b.rs".to_string(), 1);
        counts.insert("crates/graph/src/c.rs".to_string(), 2);
        let mut baseline = BTreeMap::new();
        baseline.insert("crates/graph/src/a.rs".to_string(), 2); // worse
        baseline.insert("crates/graph/src/b.rs".to_string(), 5); // better
        baseline.insert("crates/graph/src/gone.rs".to_string(), 1); // stale
        let ctx = Context {
            known_tests: Vec::new(),
            baseline,
        };
        let f = ratchet_findings(&counts, &ctx);
        assert_eq!(f.len(), 4, "{f:?}"); // worse + better + new-file(c) + stale
        assert!(f.iter().all(|f| f.rule == PANIC_RATCHET));
    }

    #[test]
    fn baseline_round_trips() {
        let mut counts = BTreeMap::new();
        counts.insert("crates/graph/src/a.rs".to_string(), 3);
        counts.insert("crates/graph/src/zero.rs".to_string(), 0);
        let text = render_baseline(&counts);
        let parsed = parse_baseline(&text).expect("well-formed");
        assert_eq!(parsed.get("crates/graph/src/a.rs"), Some(&3));
        assert!(!parsed.contains_key("crates/graph/src/zero.rs"));
        assert!(parse_baseline("[panics]\ngarbage").is_err());
    }

    #[test]
    fn crate_root_must_forbid_unsafe() {
        let (f, _) = scan_file("crates/x/src/lib.rs", "pub fn f() {}\n", &ctx(), true);
        assert!(f.iter().any(|f| f.rule == FORBID_UNSAFE_DRIFT));
        let (f, _) = scan_file(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
            &ctx(),
            true,
        );
        assert!(f.is_empty());
        // non-root files are not checked
        let (f, _) = scan_file("crates/x/src/other.rs", "pub fn f() {}\n", &ctx(), true);
        assert!(f.is_empty());
    }

    const MINI_METRIC: &str = r#"
//! | name | kind | cost |
//! |------|------|------|
//! | `n`, `m` | scalar | trivial |
//!
//! | cost | route |
//! |------|-------|
//! | `trivial` | single pass |

impl Cost {
    pub const fn name(self) -> &'static str {
        match self {
            Cost::Trivial => "trivial",
        }
    }
}

static REGISTRY: &[Def] = &[
    Def { name: "n", aliases: &["nodes"] },
    Def { name: "m", aliases: &[] },
];

    pub fn default_set() -> Vec<AnyMetric> {
        ["n", "nodes"].iter().map(get).collect()
    }
"#;

    #[test]
    fn doc_drift_accepts_consistent_source() {
        let (f, _) = scan_file("crates/metrics/src/metric.rs", MINI_METRIC, &ctx(), true);
        let drift: Vec<_> = f.iter().filter(|f| f.rule == DOC_DRIFT).collect();
        assert!(drift.is_empty(), "{drift:?}");
    }

    #[test]
    fn doc_drift_catches_each_direction() {
        // table ghost + registry metric missing from table
        let bad = MINI_METRIC.replace("| `n`, `m` |", "| `n`, `ghost` |");
        let (f, _) = scan_file("crates/metrics/src/metric.rs", &bad, &ctx(), true);
        assert!(f
            .iter()
            .any(|f| f.rule == DOC_DRIFT && f.msg.contains("`m`")));
        assert!(f
            .iter()
            .any(|f| f.rule == DOC_DRIFT && f.msg.contains("`ghost`")));
        // set array names unknown metric
        let bad = MINI_METRIC.replace("[\"n\", \"nodes\"]", "[\"n\", \"bogus\"]");
        let (f, _) = scan_file("crates/metrics/src/metric.rs", &bad, &ctx(), true);
        assert!(f
            .iter()
            .any(|f| f.rule == DOC_DRIFT && f.msg.contains("bogus")));
        // route table out of sync with Cost labels
        let bad = MINI_METRIC.replace("| `trivial` | single pass |", "| `warp` | single pass |");
        let (f, _) = scan_file("crates/metrics/src/metric.rs", &bad, &ctx(), true);
        assert!(f
            .iter()
            .any(|f| f.rule == DOC_DRIFT && f.msg.contains("trivial")));
        assert!(f
            .iter()
            .any(|f| f.rule == DOC_DRIFT && f.msg.contains("warp")));
    }
}

//! The `dk-lint` binary: CLI front end over [`dk_lint::rules`].
//!
//! ```text
//! dk-lint --workspace                 # full pass over the repo, exit 1 on findings
//! dk-lint --bench-log [FILE]          # JSON-lines schema check (default results/BENCH_metrics.json)
//! dk-lint --write-baseline            # regenerate crates/lint/baseline.toml
//! dk-lint FILE...                     # ad-hoc per-file scan (used by the fixture tests)
//! dk-lint --root PATH …               # override workspace-root discovery
//! ```
//!
//! Diagnostics go to **stderr** as `file:line: [rule] message` (the
//! compiler's shape, so editors can jump to them); exit status is the
//! only stdout-free contract CI relies on.

#![forbid(unsafe_code)]

use dk_lint::rules;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(findings) if findings.is_empty() => ExitCode::SUCCESS,
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("dk-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("dk-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

enum Mode {
    Workspace,
    BenchLog(Option<String>),
    WriteBaseline,
    Files(Vec<String>),
}

fn run(args: Vec<String>) -> Result<Vec<rules::Finding>, String> {
    let mut root: Option<PathBuf> = None;
    let mut mode: Option<Mode> = None;
    let mut files = Vec::new();
    let mut it = args.into_iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let path = it.next().ok_or("--root needs a path")?;
                root = Some(PathBuf::from(path));
            }
            "--workspace" => mode = Some(Mode::Workspace),
            "--write-baseline" => mode = Some(Mode::WriteBaseline),
            "--bench-log" => {
                let file = it
                    .peek()
                    .filter(|a| !a.starts_with("--"))
                    .cloned()
                    .inspect(|_| {
                        it.next();
                    });
                mode = Some(Mode::BenchLog(file));
            }
            "--help" | "-h" => {
                eprintln!(
                    "dk-lint: workspace determinism auditor (see LINTS.md)\n\
                     usage: dk-lint [--root PATH] (--workspace | --bench-log [FILE] | \
                     --write-baseline | FILE...)\n\
                     rules: {}",
                    rules::ALL_RULES.join(", ")
                );
                return Ok(Vec::new());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other} (try --help)"));
            }
            file => files.push(file.to_string()),
        }
    }
    let mode = match mode {
        Some(m) => m,
        None if !files.is_empty() => Mode::Files(std::mem::take(&mut files)),
        None => return Err("nothing to do: pass --workspace, --bench-log, or files".to_string()),
    };

    match mode {
        Mode::Workspace => {
            let root = resolve_root(root)?;
            rules::run_workspace(&root)
        }
        Mode::WriteBaseline => {
            let root = resolve_root(root)?;
            let counts = rules::measure_panics(&root)?;
            let path = root.join("crates/lint/baseline.toml");
            std::fs::write(&path, rules::render_baseline(&counts))
                .map_err(|e| format!("{}: {e}", path.display()))?;
            eprintln!(
                "dk-lint: wrote {} ({} ratcheted files)",
                path.display(),
                counts.values().filter(|&&c| c > 0).count()
            );
            Ok(Vec::new())
        }
        Mode::BenchLog(file) => {
            let root = resolve_root(root)?;
            let rel = file.unwrap_or_else(|| "results/BENCH_metrics.json".to_string());
            let path = if Path::new(&rel).is_absolute() {
                PathBuf::from(&rel)
            } else {
                root.join(&rel)
            };
            let contents =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            Ok(rules::bench_log_findings(&rel, &contents))
        }
        Mode::Files(files) => scan_files(root, files),
    }
}

/// Ad-hoc file mode: every token rule applies regardless of path
/// (`scoped = false`), which is what the good/bad fixture corpus
/// exercises. `.jsonl` files get the bench-log check instead.
fn scan_files(root: Option<PathBuf>, files: Vec<String>) -> Result<Vec<rules::Finding>, String> {
    // Use the real workspace context when one is discoverable so a
    // fixture waiver citing e.g. `stream_equivalence` resolves; fall
    // back to an empty context (the word "test" still satisfies the
    // citation check).
    let ctx = resolve_root(root)
        .map(|r| rules::workspace_context(&r))
        .unwrap_or_default();
    let mut findings = Vec::new();
    for file in files {
        let contents = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
        if file.ends_with(".jsonl") || file.ends_with(".json") {
            findings.extend(rules::bench_log_findings(&file, &contents));
            continue;
        }
        let (mut file_findings, panics) = rules::scan_file(&file, &contents, &ctx, false);
        findings.append(&mut file_findings);
        // File mode ratchets against an implicit baseline of zero for
        // fixture files that opt in via their name.
        if file.contains("panic_ratchet") && panics > 0 {
            findings.push(rules::Finding {
                file: file.clone(),
                line: 1,
                rule: rules::PANIC_RATCHET,
                msg: format!("{panics} panic sites against an implicit baseline of 0"),
            });
        }
    }
    findings.sort();
    Ok(findings)
}

/// `--root`, or walk up from the CWD to the first directory holding
/// both `Cargo.toml` and `crates/`.
fn resolve_root(explicit: Option<PathBuf>) -> Result<PathBuf, String> {
    if let Some(root) = explicit {
        if root.join("Cargo.toml").is_file() {
            return Ok(root);
        }
        return Err(format!("--root {}: no Cargo.toml there", root.display()));
    }
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory \
                        (pass --root)"
                .to_string());
        }
    }
}

//! Bench-log JSON schema check, over the shared [`dk_json`] parser.
//!
//! `results/BENCH_metrics.json` is a JSON-lines perf log appended to by
//! the `perf_*` bench binaries (`dk_bench::append_json_line`); nothing
//! in the workspace ever *read* it back until the serve daemon arrived,
//! which is exactly how a log format rots. `dk-lint --bench-log`
//! re-parses every line and checks the schema invariants every
//! consumer of the log relies on: each line is a JSON **object**
//! carrying a `"bench"` key that names the emitting benchmark and a
//! `"threads"` key recording the worker count the numbers were
//! measured at — without it, multi-core perf lines are untraceable
//! against the 1-core history ROADMAP quotes.
//!
//! The recursive-descent parser that used to live here was promoted to
//! the dependency-free `dk-json` crate (PR 9) so the serve protocol
//! could parse full value trees with it; this module keeps only the
//! bench-log schema logic.

use dk_json::JsonValue;

/// Parses one JSON value spanning the whole of `line` and returns the
/// top-level object keys (duplicates included; empty for non-object
/// values).
///
/// # Errors
/// A message with a byte offset on malformed input.
pub fn parse_line(line: &str) -> Result<Vec<String>, String> {
    let value = JsonValue::parse(line)?;
    Ok(value
        .entries()
        .map(|members| members.iter().map(|(k, _)| k.clone()).collect())
        .unwrap_or_default())
}

/// Validates a whole JSON-lines log: every non-empty line parses and
/// carries the `"bench"` and `"threads"` keys. Returns
/// `(line_number, message)` pairs.
pub fn check_bench_log(contents: &str) -> Vec<(usize, String)> {
    let mut problems = Vec::new();
    let mut seen_any = false;
    for (idx, line) in contents.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        seen_any = true;
        match parse_line(line) {
            Err(e) => problems.push((idx + 1, format!("not valid JSON: {e}"))),
            Ok(keys) => {
                for (key, why) in [
                    ("bench", "naming the emitting benchmark"),
                    ("threads", "recording the measured worker count"),
                ] {
                    if !keys.iter().any(|k| k == key) {
                        problems
                            .push((idx + 1, format!("JSON line lacks the \"{key}\" key {why}")));
                    }
                }
            }
        }
    }
    if !seen_any {
        problems.push((1, "bench log is empty".to_string()));
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_bench_lines_parse() {
        let line = r#"{"bench":"csr","n":100000,"fused_s":1.30,"ok":true,"tags":[1,2],"nested":{"a":null}}"#;
        let keys = parse_line(line).expect("valid");
        assert!(keys.contains(&"bench".to_string()));
        assert_eq!(keys.len(), 6);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "{",
            "{\"a\" 1}",
            "{\"a\": }",
            "[1, 2",
            "{\"a\":1} trailing",
            "nul",
            "{\"n\": 1.2.3}",
            "\"open",
            "",
        ] {
            assert!(parse_line(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn numbers_and_escapes() {
        assert!(parse_line(r#"{"x": -1.5e-3, "s": "a\"b\\c"}"#).is_ok());
        assert!(parse_line("3.25").is_ok());
        assert!(parse_line("true").is_ok());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(parse_line(&deep).is_err());
    }

    #[test]
    fn non_objects_have_no_keys() {
        assert!(parse_line("[1,2]").unwrap().is_empty());
        assert!(parse_line("42").unwrap().is_empty());
    }

    #[test]
    fn bench_log_check_flags_each_problem_line() {
        let log = "{\"bench\":\"a\",\"threads\":1}\n\n{\"other\":1}\nnot json\n{\"bench\":\"b\",\"threads\":4}\n";
        let problems = check_bench_log(log);
        // line 3 lacks both required keys, line 4 is malformed
        assert_eq!(problems.len(), 3);
        assert_eq!(problems[0].0, 3);
        assert!(problems[0].1.contains("\"bench\""));
        assert_eq!(problems[1].0, 3);
        assert!(problems[1].1.contains("\"threads\""));
        assert_eq!(problems[2].0, 4);
        assert_eq!(
            check_bench_log(""),
            vec![(1, "bench log is empty".to_string())]
        );
        assert!(check_bench_log("{\"bench\":\"x\",\"threads\":1}\n").is_empty());
    }

    #[test]
    fn bench_log_requires_the_threads_key() {
        // the pre-PR-10 line shape: "bench" present, "threads" missing
        let problems = check_bench_log("{\"bench\":\"mcmc_2k\",\"n\":20000}\n");
        assert_eq!(problems.len(), 1);
        assert!(problems[0].1.contains("\"threads\""));
    }
}

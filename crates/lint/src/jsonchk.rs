//! Minimal JSON validity checker for the bench log.
//!
//! `results/BENCH_metrics.json` is a JSON-lines perf log appended to by
//! the `perf_*` bench binaries (`dk_bench::append_json_line`); nothing
//! in the workspace ever *reads* it back, which is exactly how a log
//! format rots. `dk-lint --bench-log` re-parses every line with this
//! hand-rolled recursive-descent parser (the workspace ships no JSON
//! reader — `dk_metrics::json` is a writer) and checks the one schema
//! invariant every consumer of the log relies on: each line is a JSON
//! **object** carrying a `"bench"` key that names the emitting
//! benchmark.

/// Maximum nesting depth accepted — the log is flat in practice; the
/// bound keeps the recursive parser stack-safe on adversarial input.
const MAX_DEPTH: usize = 64;

/// Parses one JSON value spanning the whole of `line` and returns the
/// top-level object keys (empty for non-object values).
///
/// # Errors
/// A message with a byte offset on malformed input.
pub fn parse_line(line: &str) -> Result<Vec<String>, String> {
    let bytes = line.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let keys = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(keys)
}

/// Validates a whole JSON-lines log: every non-empty line parses and
/// carries the `"bench"` key. Returns `(line_number, message)` pairs.
pub fn check_bench_log(contents: &str) -> Vec<(usize, String)> {
    let mut problems = Vec::new();
    let mut seen_any = false;
    for (idx, line) in contents.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        seen_any = true;
        match parse_line(line) {
            Err(e) => problems.push((idx + 1, format!("not valid JSON: {e}"))),
            Ok(keys) if !keys.iter().any(|k| k == "bench") => problems.push((
                idx + 1,
                "JSON line lacks the \"bench\" key naming the emitting benchmark".to_string(),
            )),
            Ok(_) => {}
        }
    }
    if !seen_any {
        problems.push((1, "bench log is empty".to_string()));
    }
    problems
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    /// Parses one value; returns its keys if it is an object.
    fn value(&mut self, depth: usize) -> Result<Vec<String>, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(depth),
            Some(b'[') => {
                self.pos += 1;
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Vec::new());
                }
                loop {
                    self.value(depth + 1)?;
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => {
                            self.pos += 1;
                            self.skip_ws();
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Vec::new());
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'"') => {
                self.string()?;
                Ok(Vec::new())
            }
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                self.number()?;
                Ok(Vec::new())
            }
            Some(c) => Err(format!(
                "unexpected {:?} at byte {}",
                char::from(*c),
                self.pos
            )),
            None => Err("unexpected end of line".to_string()),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Vec<String>, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut keys = Vec::new();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(keys);
        }
        loop {
            self.skip_ws();
            keys.push(self.string()?);
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(keys);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        let mut out = String::new();
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    // escape: skip the introducer and the escaped byte
                    // (\uXXXX consumes its 4 hex digits as ordinary
                    // bytes on later iterations — validity of the hex
                    // is not this checker's concern)
                    self.pos += 2;
                    out.push('\u{FFFD}');
                }
                _ => {
                    out.push(char::from(b));
                    self.pos += 1;
                }
            }
        }
        Err(format!("unterminated string starting at byte {start}"))
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text: String = self.bytes[start..self.pos]
            .iter()
            .map(|&b| char::from(b))
            .collect();
        if text.parse::<f64>().is_ok() {
            Ok(())
        } else {
            Err(format!("malformed number {text:?} at byte {start}"))
        }
    }

    fn literal(&mut self, word: &str) -> Result<Vec<String>, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(Vec::new())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_bench_lines_parse() {
        let line = r#"{"bench":"csr","n":100000,"fused_s":1.30,"ok":true,"tags":[1,2],"nested":{"a":null}}"#;
        let keys = parse_line(line).expect("valid");
        assert!(keys.contains(&"bench".to_string()));
        assert_eq!(keys.len(), 6);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "{",
            "{\"a\" 1}",
            "{\"a\": }",
            "[1, 2",
            "{\"a\":1} trailing",
            "nul",
            "{\"n\": 1.2.3}",
            "\"open",
            "",
        ] {
            assert!(parse_line(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn numbers_and_escapes() {
        assert!(parse_line(r#"{"x": -1.5e-3, "s": "a\"b\\c"}"#).is_ok());
        assert!(parse_line("3.25").is_ok());
        assert!(parse_line("true").is_ok());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(parse_line(&deep).is_err());
    }

    #[test]
    fn bench_log_check_flags_each_problem_line() {
        let log = "{\"bench\":\"a\"}\n\n{\"other\":1}\nnot json\n{\"bench\":\"b\"}\n";
        let problems = check_bench_log(log);
        assert_eq!(problems.len(), 2);
        assert_eq!(problems[0].0, 3);
        assert_eq!(problems[1].0, 4);
        assert_eq!(
            check_bench_log(""),
            vec![(1, "bench log is empty".to_string())]
        );
        assert!(check_bench_log("{\"bench\":\"x\"}\n").is_empty());
    }
}

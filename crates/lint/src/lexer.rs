//! A minimal Rust *lexical stripper*.
//!
//! The rule engine must never fire inside a doc comment that merely
//! *mentions* `HashMap`, or inside a string literal that happens to
//! contain `.unwrap()` (dk-lint's own source is full of such strings).
//! This module produces a **code view** of a source file: the original
//! text with every comment, string literal, and char literal blanked to
//! spaces, newlines preserved — so line/column arithmetic on the code
//! view maps 1:1 onto the original file — plus the comment texts
//! themselves (waivers live in comments, see [`crate::rules`]).
//!
//! This is *not* a full Rust lexer: it recognizes exactly the token
//! classes whose contents must be invisible to the rules —
//!
//! * line comments (`//`, `///`, `//!`),
//! * block comments (`/* */`, **nested**, as in Rust),
//! * string literals (`"…"` with escapes, byte strings `b"…"`),
//! * raw strings (`r"…"`, `r#"…"#` with any number of `#`, `br#"…"#`),
//! * char and byte-char literals (`'a'`, `'\n'`, `b'x'`) — carefully
//!   distinguished from lifetimes (`'a`, `'static`), which are code.
//!
//! Everything else passes through untouched. The stripper is a single
//! forward pass over the char sequence: it always terminates, and it
//! never panics on arbitrary input (both properties are locked down by
//! the `lexer_fuzz` proptest) — malformed input (an unterminated
//! string, a stray quote) degrades to "blank to end of file", which is
//! the conservative direction for a linter: it can only *hide* tokens
//! from the rules, and only past the point where the file stopped
//! being valid Rust.

/// One comment extracted from a source file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// Comment text *without* the `//` / `/*` delimiters, trimmed.
    pub text: String,
}

/// Result of stripping one source file.
#[derive(Clone, Debug)]
pub struct Stripped {
    /// The code view: same char count and line structure as the input,
    /// with comments and string/char literals blanked to spaces.
    pub code: String,
    /// Every comment, in file order.
    pub comments: Vec<Comment>,
}

/// `true` for characters that may continue an identifier.
fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Strips comments and literals from `src`. See the module docs.
pub fn strip(src: &str) -> Stripped {
    let chars: Vec<char> = src.chars().collect();
    let mut code: Vec<char> = Vec::with_capacity(chars.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    // The last char emitted *as code* — used to tell a raw-string `r"`
    // from the tail of an identifier like `var"` (not valid Rust, but
    // the stripper must not misfire on it either way).
    let mut prev_code: Option<char> = None;

    // Blanks chars[from..to] into `code`, preserving newlines.
    let blank = |code: &mut Vec<char>, chars: &[char], from: usize, to: usize| {
        for &c in &chars[from..to] {
            code.push(if c == '\n' { '\n' } else { ' ' });
        }
    };

    while i < chars.len() {
        let c = chars[i];
        match c {
            '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                // Line comment: runs to (excluding) the newline.
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start + 2..i].iter().collect();
                // Strip only the *contiguous* doc markers (`///`, `//!`)
                // so that a doc line quoting a `// lint: …` waiver
                // example keeps its inner `//` and is not itself parsed
                // as a waiver.
                comments.push(Comment {
                    line,
                    text: text.trim_start_matches(['/', '!']).trim().to_string(),
                });
                blank(&mut code, &chars, start, i);
            }
            '/' if i + 1 < chars.len() && chars[i + 1] == '*' => {
                // Block comment — Rust block comments nest.
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end_text = i.saturating_sub(2).max(start + 2);
                let text: String = chars[start + 2..end_text.min(chars.len())].iter().collect();
                comments.push(Comment {
                    line: start_line,
                    text: text.trim().to_string(),
                });
                blank(&mut code, &chars, start, i);
            }
            '"' => {
                let start = i;
                i = skip_string_body(&chars, i + 1, &mut line);
                blank(&mut code, &chars, start, i);
            }
            'r' | 'b' if prev_code.is_none_or(|p| !is_ident_char(p)) => {
                // Candidate raw/byte string or byte char: r", r#", b", br",
                // b'…'. Anything else falls through as plain code.
                if let Some(end) = try_skip_raw_or_byte(&chars, i, &mut line) {
                    blank(&mut code, &chars, i, end);
                    i = end;
                    prev_code = None;
                } else {
                    code.push(c);
                    prev_code = Some(c);
                    i += 1;
                }
                continue;
            }
            '\'' => {
                // Char literal or lifetime. A lifetime is `'` followed by
                // an identifier *not* closed by another `'` right after
                // its first char ('a' is a char literal, 'ab is … not
                // valid, but `'a>` / `'a,` / `'a ` are lifetimes).
                let is_char_lit = match chars.get(i + 1) {
                    Some('\\') => true,
                    Some(&n) if is_ident_char(n) => chars.get(i + 2) == Some(&'\''),
                    Some(_) => chars.get(i + 2) == Some(&'\''),
                    None => false,
                };
                if is_char_lit {
                    let start = i;
                    i += 1; // past the opening quote
                    if chars.get(i) == Some(&'\\') {
                        i += 1; // the escape introducer
                                // skip the escaped char / sequence up to the
                                // closing quote
                        while i < chars.len() && chars[i] != '\'' {
                            if chars[i] == '\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                        i = (i + 1).min(chars.len());
                    } else {
                        i = (i + 3).min(chars.len()); // char + closing quote
                    }
                    blank(&mut code, &chars, start, i);
                    prev_code = None;
                } else {
                    code.push(c);
                    prev_code = Some(c);
                    i += 1;
                }
                continue;
            }
            _ => {
                if c == '\n' {
                    line += 1;
                }
                code.push(c);
                prev_code = Some(c);
                i += 1;
                continue;
            }
        }
        // Shared tail for the blanking arms: a blanked literal or
        // comment ends the previous code token. (`line` was updated
        // inside the arm: line comments contain no newlines, block
        // comments count inline, strings count in `skip_string_body`.)
        prev_code = None;
    }

    Stripped {
        code: code.into_iter().collect(),
        comments,
    }
}

/// Skips a (non-raw) string body starting just *after* the opening
/// quote; returns the index just past the closing quote (or EOF).
fn skip_string_body(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2, // skip the escaped char, whatever it is
            '"' => return i + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    chars.len()
}

/// If `chars[i..]` begins a raw string (`r"`, `r#"`, …), byte string
/// (`b"`, `br"`, `br#"`), or byte-char literal (`b'x'`), returns the
/// index just past its end. Otherwise `None`.
fn try_skip_raw_or_byte(chars: &[char], i: usize, line: &mut usize) -> Option<usize> {
    let mut j = i;
    let mut raw = false;
    match chars.get(j) {
        Some('b') => {
            j += 1;
            if chars.get(j) == Some(&'r') {
                raw = true;
                j += 1;
            }
        }
        Some('r') => {
            raw = true;
            j += 1;
        }
        _ => return None,
    }
    if raw {
        // count the `#`s
        let mut hashes = 0usize;
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if chars.get(j) != Some(&'"') {
            return None;
        }
        j += 1;
        // scan for `"` followed by `hashes` `#`s
        while j < chars.len() {
            if chars[j] == '\n' {
                *line += 1;
            }
            if chars[j] == '"' && chars[j + 1..].iter().take_while(|&&c| c == '#').count() >= hashes
            {
                return Some(j + 1 + hashes);
            }
            j += 1;
        }
        Some(chars.len())
    } else if chars.get(j) == Some(&'"') {
        // plain byte string b"…"
        Some(skip_string_body(chars, j + 1, line))
    } else if chars.get(j) == Some(&'\'') {
        // byte char literal b'x' / b'\n'
        j += 1;
        if chars.get(j) == Some(&'\\') {
            j += 1;
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            Some((j + 1).min(chars.len()))
        } else if chars.get(j + 1) == Some(&'\'') {
            Some(j + 2)
        } else {
            None
        }
    } else {
        None
    }
}

/// `true` if `code[pos..pos + ident.len()]` is the identifier `ident`
/// on identifier boundaries (so `DetHashMap` does not contain the
/// identifier `HashMap`).
pub fn ident_at(code: &str, pos: usize, ident: &str) -> bool {
    if !code[pos..].starts_with(ident) {
        return false;
    }
    let before_ok = pos == 0 || !code[..pos].chars().next_back().is_some_and(is_ident_char);
    let after_ok = !code[pos + ident.len()..]
        .chars()
        .next()
        .is_some_and(is_ident_char);
    before_ok && after_ok
}

/// Byte offsets of every occurrence of identifier `ident` in `code`,
/// on identifier boundaries.
pub fn find_ident(code: &str, ident: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(off) = code[from..].find(ident) {
        let pos = from + off;
        if ident_at(code, pos, ident) {
            out.push(pos);
        }
        from = pos + ident.len().max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked_and_collected() {
        let s = strip("let x = 1; // HashMap here\nlet y = 2;");
        assert!(!s.code.contains("HashMap"));
        assert!(s.code.contains("let y = 2;"));
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].line, 1);
        assert!(s.comments[0].text.contains("HashMap here"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let s = strip(src);
        assert_eq!(s.code.chars().count(), src.chars().count());
        assert!(!s.code.contains("inner"));
        assert!(s.code.starts_with("a "));
        assert!(s.code.ends_with(" b"));
        assert_eq!(s.comments.len(), 1);
    }

    #[test]
    fn strings_and_escapes_are_blanked() {
        let s = strip(r#"call(".unwrap() \" still string", x)"#);
        assert!(!s.code.contains("unwrap"));
        assert!(s.code.contains("call("));
        assert!(s.code.contains(", x)"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let s = strip(r###"let s = r#"panic!("inner")"# ; done"###);
        assert!(!s.code.contains("panic"));
        assert!(s.code.contains("done"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let s = strip("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(s.code.contains("<'a>"));
        assert!(s.code.contains("&'a str"));
        assert!(!s.code.contains("'x'"));
        assert!(!s.code.contains("\\n"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let s = strip(r#"let a = b"unwrap"; let c = b'u'; keep"#);
        assert!(!s.code.contains("unwrap"));
        assert!(!s.code.contains("b'u'"));
        assert!(s.code.contains("keep"));
    }

    #[test]
    fn identifier_r_is_not_a_raw_string() {
        let s = strip("let r = 1; for x in r..2 {}");
        assert!(s.code.contains("let r = 1"));
        assert!(s.code.contains("r..2"));
    }

    #[test]
    fn line_structure_is_preserved() {
        let src = "a\n\"two\nlines\"\n/* c\nc */ b\n";
        let s = strip(src);
        assert_eq!(
            s.code.matches('\n').count(),
            src.matches('\n').count(),
            "newline count must survive blanking"
        );
        assert_eq!(s.code.chars().count(), src.chars().count());
    }

    #[test]
    fn stripping_is_idempotent() {
        let src = r##"let x = "s"; // c
            let y = 'c'; /* b */ r#"raw"# ;"##;
        let once = strip(src);
        let twice = strip(&once.code);
        assert_eq!(once.code, twice.code);
        assert!(twice.comments.is_empty());
    }

    #[test]
    fn unterminated_tokens_do_not_panic() {
        for src in [
            "\"open", "r#\"open", "/* open", "'\\", "b'", "b\"x", "r#", "'",
        ] {
            let s = strip(src);
            assert_eq!(s.code.chars().count(), src.chars().count(), "{src:?}");
        }
    }

    #[test]
    fn ident_boundaries() {
        let code = "DetHashMap HashMap my_HashMap HashMap2 (HashMap)";
        let hits = find_ident(code, "HashMap");
        assert_eq!(hits.len(), 2); // the bare one and the parenthesized one
    }
}

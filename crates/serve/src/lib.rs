//! # dk-serve — long-running analysis/generation daemon
//!
//! Re-measuring a large topology for every `dk metrics` invocation
//! re-pays graph loading, GCC extraction, and CSR construction each
//! time. `dk serve` keeps that state warm: a daemon holds a registry of
//! **named graphs**, each owning a frozen snapshot plus a warm
//! [`dk_metrics::AnalysisCache`], and answers analysis/generation
//! requests over a line-delimited JSON protocol on a Unix socket.
//!
//! ```text
//! dk serve  --socket /tmp/dk.sock [--memory-budget BYTES] [--threads N]
//! dk client --socket /tmp/dk.sock '{"op":"stats"}'
//! ```
//!
//! Three properties the tests enforce:
//!
//! * **Batched coalescing** — identical concurrent requests (same
//!   graph, epoch, op, knobs) collapse onto one computation; sequential
//!   repeats replay from a per-epoch memo ([`registry`]).
//! * **Admission control** — requests are priced against the streamed
//!   executor's byte model before any allocation; over-budget requests
//!   get a structured `over_budget` error instead of an OOM, and
//!   admitted ones carry the budget into the executor ([`registry`]).
//! * **Determinism** — the same request stream with the same seeds
//!   produces byte-identical response bodies for every `--threads`
//!   value ([`server`]).
//!
//! # Protocol reference
//!
//! One request per line, one JSON object per request; one JSON object
//! per response line. Requests over 1 MiB ([`protocol::MAX_REQUEST_BYTES`])
//! are rejected and the connection closed. Successful responses carry
//! `"ok":true` and echo `"op"`; failures are
//! `{"ok":false,"error":{"code":…,"message":…}}` with codes
//! `parse`, `bad_request`, `unknown_op`, `unknown_graph`,
//! `unknown_metric`, `bad_knob`, `over_budget`, `io`, `oversized`.
//!
//! | op | request fields | response (beyond `ok`/`op`) |
//! |----|----------------|------------------------------|
//! | `load` | `graph`, `path` | `graph`, `epoch`, `n`, `m` |
//! | `metric` | `graph`, `metrics?` (list or `cheap`/`default`/`all`), `no_gcc?`, `samples?`, `sketch_bits?`, `shards?`, `memory_budget?` | `graph`, `result:{epoch, graph_summary, values}` |
//! | `compare` | `a`, `b`, + the `metric` knobs | `distances:{d1,d2,d3,epoch_a,epoch_b}`, `a`/`b` sides with `result` fragments (both sides and the distances are computed from one snapshot per graph, captured up front) |
//! | `attack` | `graph`, `strategy?`, `seed?`, `checkpoints?` (array in `0..=1`), `samples?`, `no_gcc?` | `graph`, `epoch`, `report` (the `dk attack` JSON) |
//! | `rewire` | `graph`, `d` (0..=3), `attempts?`, `seed?` | `graph`, new `epoch`, `accepted`, `attempts`, `n`, `m` |
//! | `generate-into` | `graph` (dest), `from` (source), `d`, `algo?` (default `pseudograph`), `seed?` | `graph`, `from`, `algo`, `d`, new `epoch`, `n`, `m` |
//! | `stats` | — | `graphs` (sorted by name), `counters` |
//! | `shutdown` | — | — (daemon exits after responding) |
//!
//! Metric values in `values` use a **tagged** encoding that separates
//! "undefined on this graph" from "computed but not finite" — see
//! [`protocol::tagged_value`]. `load`, `rewire`, and `generate-into`
//! bump the entry's **epoch**, atomically invalidating its warm cache
//! and memoized responses; `rewire` and `generate-into` are priced
//! through the same admission gate as analysis ops (the mutable
//! clone / generated graph is the footprint), so an over-budget daemon
//! rejects them structurally too. `stats` counters reflect scheduling
//! and are the one response exempt from the byte-identity contract.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod registry;
pub mod server;

pub use client::{one_shot, Client};
pub use protocol::{ReqError, MAX_REQUEST_BYTES};
pub use registry::{Counters, Registry};
pub use server::{handle_line, run, Server, ServerConfig};

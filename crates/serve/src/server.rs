//! The daemon itself: Unix-socket accept loop, connection threads, and
//! the op dispatcher.
//!
//! [`handle_line`] is the whole protocol — one request line in, one
//! response line out — and touches nothing but the registry, so
//! integration tests can drive it directly without sockets. The socket
//! layer ([`Server`] / [`run`]) adds framing (line-delimited JSON, the
//! [`MAX_REQUEST_BYTES`] cap) and threading (one thread per
//! connection; requests on one connection are handled strictly in
//! order, which is what makes a request *stream* reproducible).
//!
//! Responses are deterministic: every response body is a pure function
//! of the registry's graph states and the request (the `stats` op,
//! which reports scheduling counters, is the documented exception).
//! Metric values are thread-count and route invariant, so the same
//! request stream over one connection produces byte-identical
//! transcripts for every `--threads` value.

use crate::protocol::{quoted, tagged_value, Req, ReqError, MAX_REQUEST_BYTES};
use crate::registry::{lock, Counters, Registry, WarmCache};
use dk_core::dist::{AnyDist, Dist1K, Dist2K, Dist3K};
use dk_core::generate::rewire::{randomize, RewireOptions, SwapBudget};
use dk_core::generate::{Generator, Method};
use dk_graph::io as graph_io;
use dk_metrics::json;
use dk_metrics::{AnalysisCache, AnalyzeOptions, AnyMetric, AttackOptions, GccPolicy, Strategy};
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Knobs of one daemon instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Path of the Unix socket to bind (a stale socket file is
    /// replaced; a live daemon's socket or a non-socket file is not).
    pub socket: PathBuf,
    /// Server-wide memory budget for admission control.
    pub memory_budget: Option<u64>,
    /// Thread budget per analysis pass (latency only; values are
    /// thread-count invariant).
    pub threads: usize,
}

/// Default per-request metric list (the cheap scalar battery — the
/// same default `dk compare` uses).
pub const DEFAULT_METRICS: &str = "cheap";

/// Seed used by ops that accept `seed` when the request omits it.
pub const DEFAULT_SEED: u64 = 1;

// ---------------------------------------------------------------------
// Op dispatch
// ---------------------------------------------------------------------

/// Handles one request line, returning one response line (no trailing
/// newline). Never panics on untrusted input: malformed requests come
/// back as structured errors.
pub fn handle_line(reg: &Registry, line: &str) -> String {
    reg.counters.served.fetch_add(1, Ordering::Relaxed);
    match dispatch(reg, line) {
        Ok(body) => body,
        Err(e) => e.to_response(),
    }
}

fn dispatch(reg: &Registry, line: &str) -> Result<String, ReqError> {
    if line.len() > MAX_REQUEST_BYTES {
        return Err(ReqError::new(
            "oversized",
            format!(
                "request line is {} bytes; the limit is {MAX_REQUEST_BYTES}",
                line.len()
            ),
        ));
    }
    let value = dk_json::JsonValue::parse(line)
        .map_err(|e| ReqError::new("parse", format!("invalid JSON: {e}")))?;
    let req = Req::new(&value)?;
    let op = req.str_field("op")?;
    match op {
        "load" => op_load(reg, &req),
        "metric" => op_metric(reg, &req),
        "compare" => op_compare(reg, &req),
        "attack" => op_attack(reg, &req),
        "rewire" => op_rewire(reg, &req),
        "generate-into" => op_generate_into(reg, &req),
        "stats" => Ok(op_stats(reg)),
        "shutdown" => Ok(op_shutdown(reg)),
        other => Err(ReqError::new(
            "unknown_op",
            format!(
                "no op named {other:?}; known ops: load, metric, compare, attack, \
                 rewire, generate-into, stats, shutdown"
            ),
        )),
    }
}

fn ok_head(op: &str) -> Vec<(String, String)> {
    vec![("ok".into(), "true".into()), ("op".into(), quoted(op))]
}

fn op_load(reg: &Registry, req: &Req<'_>) -> Result<String, ReqError> {
    let name = req.str_field("graph")?;
    let path = req.str_field("path")?;
    let g = graph_io::load_edge_list(Path::new(path))
        .map_err(|e| ReqError::new("io", format!("cannot load {path:?}: {e}")))?;
    let (n, m) = (g.node_count(), g.edge_count());
    let epoch = reg.install(name, g);
    let mut fields = ok_head("load");
    fields.extend([
        ("graph".into(), quoted(name)),
        ("epoch".into(), epoch.to_string()),
        ("n".into(), n.to_string()),
        ("m".into(), m.to_string()),
    ]);
    Ok(json::object(fields))
}

/// Analysis knobs shared by `metric` and `compare`.
struct MetricKnobs {
    metrics: Vec<AnyMetric>,
    gcc: GccPolicy,
    samples: Option<u64>,
    sketch_bits: Option<u64>,
    shards: Option<u64>,
    memory_budget: Option<u64>,
    /// Canonical key: resolved metric names + every knob, so two
    /// requests coalesce exactly when their analysis is identical.
    key: String,
}

fn parse_metric_knobs(req: &Req<'_>) -> Result<MetricKnobs, ReqError> {
    let list = req.opt_str("metrics")?.unwrap_or(DEFAULT_METRICS);
    let metrics = AnyMetric::parse_list(list).map_err(|e| ReqError::new("unknown_metric", e))?;
    let no_gcc = req.opt_bool("no_gcc")?.unwrap_or(false);
    let samples = req.opt_u64("samples")?;
    let sketch_bits = req.opt_u64("sketch_bits")?;
    let shards = req.opt_u64("shards")?;
    let memory_budget = req.opt_u64("memory_budget")?;
    let names: Vec<&str> = metrics.iter().map(|m| m.name()).collect();
    let key = format!(
        "metrics={};gcc={};samples={:?};bits={:?};shards={:?};budget={:?}",
        names.join(","),
        !no_gcc,
        samples,
        sketch_bits,
        shards,
        memory_budget,
    );
    Ok(MetricKnobs {
        metrics,
        gcc: if no_gcc {
            GccPolicy::Whole
        } else {
            GccPolicy::Extract
        },
        samples,
        sketch_bits,
        shards,
        memory_budget,
        key,
    })
}

fn analyze_options(
    reg: &Registry,
    knobs: &MetricKnobs,
    epoch: u64,
    budget: Option<u64>,
) -> AnalyzeOptions {
    let mut opts = AnalyzeOptions {
        gcc: knobs.gcc,
        threads: reg.threads,
        epoch,
        ..AnalyzeOptions::default()
    };
    if let Some(k) = knobs.samples {
        opts.samples = (k as usize).max(1);
    }
    if let Some(bits) = knobs.sketch_bits {
        opts.sketch_bits = (bits as u32).clamp(
            dk_metrics::sketch::MIN_SKETCH_BITS,
            dk_metrics::sketch::MAX_SKETCH_BITS,
        );
    }
    if let Some(shards) = knobs.shards {
        opts.shards = Some((shards as usize).max(1));
    }
    if let Some(b) = budget {
        opts.memory_budget = Some(b.max(1));
    }
    opts
}

/// Flight/memo key for a metric pass. The flight table is
/// registry-global, so the key must embed the graph *name*: two
/// freshly loaded graphs share an epoch, and without the name their
/// identical-knob requests would coalesce onto one computation and one
/// would receive the other's values.
fn metric_key(name: &str, epoch: u64, knobs_key: &str) -> String {
    format!("g={name};e{epoch}:metric:{knobs_key}")
}

/// One consistent view of a slot for an analysis pass: the observed
/// epoch, the frozen snapshot, and the warm cache if it matches
/// `knobs` — all read under a single lock acquisition.
fn snapshot(
    slot: &crate::registry::GraphSlot,
    knobs: &MetricKnobs,
) -> (
    u64,
    Arc<dk_graph::Graph>,
    Option<Arc<AnalysisCache<'static>>>,
) {
    let state = lock(slot);
    let warm = state
        .warm
        .as_ref()
        .and_then(|w| (w.epoch == state.epoch && w.knobs == knobs.key).then(|| w.cache.clone()));
    (state.epoch, state.graph.clone(), warm)
}

/// The memoizable per-graph analysis fragment
/// (`{"epoch":…,"graph_summary":…,"values":…}`), produced under the
/// coalescing discipline, reusing/refreshing the slot's warm cache.
fn metric_fragment(reg: &Registry, name: &str, knobs: &MetricKnobs) -> Result<String, ReqError> {
    let slot = reg.slot(name)?;
    let (epoch, graph, warm) = snapshot(&slot, knobs);
    metric_fragment_at(reg, name, &slot, epoch, graph, warm, knobs)
}

/// [`metric_fragment`] over an already-captured `(epoch, graph, warm)`
/// snapshot, so `compare` can pin both sides once up front.
fn metric_fragment_at(
    reg: &Registry,
    name: &str,
    slot: &crate::registry::GraphSlot,
    epoch: u64,
    graph: Arc<dk_graph::Graph>,
    warm: Option<Arc<AnalysisCache<'static>>>,
    knobs: &MetricKnobs,
) -> Result<String, ReqError> {
    let budget = reg.admit(
        graph.node_count(),
        graph.edge_count(),
        &knobs.metrics,
        knobs.sketch_bits.map_or(8, |b| b as u32),
        knobs.memory_budget,
    )?;
    let key = metric_key(name, epoch, &knobs.key);
    reg.coalesce(slot, epoch, &key, || {
        let cache = match warm {
            Some(cache) => cache,
            None => {
                let opts = analyze_options(reg, knobs, epoch, budget);
                let built = Arc::new(AnalysisCache::build_owned(
                    (*graph).clone(),
                    &knobs.metrics,
                    &opts,
                ));
                let mut state = lock(slot);
                if state.epoch == epoch {
                    state.warm = Some(WarmCache {
                        knobs: knobs.key.clone(),
                        epoch,
                        cache: built.clone(),
                    });
                }
                built
            }
        };
        let summary = json::object([
            ("nodes".into(), cache.original_nodes().to_string()),
            ("edges".into(), cache.original_edges().to_string()),
            (
                "analyzed_nodes".into(),
                cache.graph().node_count().to_string(),
            ),
            (
                "analyzed_edges".into(),
                cache.graph().edge_count().to_string(),
            ),
            ("gcc_fraction".into(), json::number(cache.gcc_fraction())),
            ("gcc".into(), cache.gcc_applied().to_string()),
        ]);
        let values = json::object(
            knobs
                .metrics
                .iter()
                .map(|m| (m.name().to_string(), tagged_value(&m.compute(&cache)))),
        );
        Ok(json::object([
            ("epoch".into(), epoch.to_string()),
            ("graph_summary".into(), summary),
            ("values".into(), values),
        ]))
    })
}

fn op_metric(reg: &Registry, req: &Req<'_>) -> Result<String, ReqError> {
    let name = req.str_field("graph")?;
    let knobs = parse_metric_knobs(req)?;
    let fragment = metric_fragment(reg, name, &knobs)?;
    let mut fields = ok_head("metric");
    fields.extend([("graph".into(), quoted(name)), ("result".into(), fragment)]);
    Ok(json::object(fields))
}

fn op_compare(reg: &Registry, req: &Req<'_>) -> Result<String, ReqError> {
    let a_name = req.str_field("a")?;
    let b_name = req.str_field("b")?;
    let knobs = parse_metric_knobs(req)?;
    let slot_a = reg.slot(a_name)?;
    let slot_b = reg.slot(b_name)?;
    // one snapshot per side, captured up front: the metric fragments
    // and the dK-distance block below describe the same (epoch, graph)
    // pair even if a mutation lands mid-compare
    let (ea, ga, warm_a) = snapshot(&slot_a, &knobs);
    let (eb, gb, warm_b) = snapshot(&slot_b, &knobs);
    // per-graph batteries share flight/memo keys with the metric op —
    // a compare racing a metric on the same graph coalesces with it
    let frag_a = metric_fragment_at(reg, a_name, &slot_a, ea, ga.clone(), warm_a, &knobs)?;
    let frag_b = metric_fragment_at(reg, b_name, &slot_b, eb, gb.clone(), warm_b, &knobs)?;
    // dK-distances over the same snapshots, under their own key (both
    // names + both epochs: the flight table is registry-global)
    let dist_key = format!("g={a_name};e{ea}:compare-dist:g={b_name};eb={eb}");
    let distances = reg.coalesce(&slot_a, ea, &dist_key, || {
        let d1 = Dist1K::from_graph(&ga).distance_sq(&Dist1K::from_graph(&gb));
        let d2 = Dist2K::from_graph(&ga).distance_sq(&Dist2K::from_graph(&gb));
        let d3 = Dist3K::from_graph(&ga).distance_sq(&Dist3K::from_graph(&gb));
        Ok(json::object([
            ("d1".into(), json::number(d1)),
            ("d2".into(), json::number(d2)),
            ("d3".into(), json::number(d3)),
            ("epoch_a".into(), ea.to_string()),
            ("epoch_b".into(), eb.to_string()),
        ]))
    })?;
    let side = |name: &str, frag: String| {
        json::object([("graph".into(), quoted(name)), ("result".into(), frag)])
    };
    let mut fields = ok_head("compare");
    fields.extend([
        ("distances".into(), distances),
        ("a".into(), side(a_name, frag_a)),
        ("b".into(), side(b_name, frag_b)),
    ]);
    Ok(json::object(fields))
}

fn op_attack(reg: &Registry, req: &Req<'_>) -> Result<String, ReqError> {
    let name = req.str_field("graph")?;
    let strategy_name = req.opt_str("strategy")?.unwrap_or("degree");
    let strategy: Strategy = strategy_name
        .parse()
        .map_err(|e: String| ReqError::new("bad_knob", e))?;
    let seed = req.opt_u64("seed")?.unwrap_or(DEFAULT_SEED);
    let checkpoints = req.opt_f64_array("checkpoints")?.unwrap_or_default();
    if checkpoints.iter().any(|f| !(0.0..=1.0).contains(f)) {
        return Err(ReqError::new(
            "bad_knob",
            "knob \"checkpoints\" entries must lie in 0.0..=1.0",
        ));
    }
    let samples = req.opt_u64("samples")?;
    let no_gcc = req.opt_bool("no_gcc")?.unwrap_or(false);
    let slot = reg.slot(name)?;
    let (epoch, graph) = {
        let state = lock(&slot);
        (state.epoch, state.graph.clone())
    };
    // attack sweeps build a CSR + union-find over the analyzed graph;
    // gate them on the same fixed-footprint floor as a metric pass
    reg.admit(graph.node_count(), graph.edge_count(), &[], 8, None)?;
    let key = format!(
        "g={name};e{epoch}:attack:strategy={strategy};seed={seed};\
         checkpoints={checkpoints:?};samples={samples:?};gcc={}",
        !no_gcc
    );
    let attack_opts = AttackOptions {
        strategy,
        seed,
        checkpoints,
    };
    reg.coalesce(&slot, epoch, &key, || {
        let mut analyzer = dk_metrics::Analyzer::new()
            .threads(reg.threads)
            .epoch(epoch);
        if no_gcc {
            analyzer = analyzer.gcc(GccPolicy::Whole);
        }
        if let Some(k) = samples {
            analyzer = analyzer.sample_sources((k as usize).max(1));
        }
        let report = analyzer.attack(&graph, &attack_opts);
        let mut fields = ok_head("attack");
        fields.extend([
            ("graph".into(), quoted(name)),
            ("epoch".into(), epoch.to_string()),
            ("report".into(), report.to_json()),
        ]);
        Ok(json::object(fields))
    })
}

fn op_rewire(reg: &Registry, req: &Req<'_>) -> Result<String, ReqError> {
    let name = req.str_field("graph")?;
    let d = parse_order(req)?;
    let seed = req.opt_u64("seed")?.unwrap_or(DEFAULT_SEED);
    let attempts = req.opt_u64("attempts")?;
    let slot = reg.slot(name)?;
    let graph = lock(&slot).graph.clone();
    // the rewire works on a full mutable clone of the snapshot: price
    // that footprint through the admission gate before allocating it
    reg.admit(graph.node_count(), graph.edge_count(), &[], 8, None)?;
    let mut g = (*graph).clone();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let opts = RewireOptions {
        budget: attempts.map_or(SwapBudget::AttemptsPerEdge(50.0), SwapBudget::Attempts),
    };
    let stats = randomize(&mut g, d, &opts, &mut rng);
    let (n, m) = (g.node_count(), g.edge_count());
    let epoch = reg.install(name, g);
    let mut fields = ok_head("rewire");
    fields.extend([
        ("graph".into(), quoted(name)),
        ("epoch".into(), epoch.to_string()),
        ("d".into(), d.to_string()),
        ("accepted".into(), stats.accepted.to_string()),
        ("attempts".into(), stats.attempts.to_string()),
        ("n".into(), n.to_string()),
        ("m".into(), m.to_string()),
    ]);
    Ok(json::object(fields))
}

fn op_generate_into(reg: &Registry, req: &Req<'_>) -> Result<String, ReqError> {
    let name = req.str_field("graph")?;
    let from = req.str_field("from")?;
    let d = parse_order(req)?;
    let algo_name = req.opt_str("algo")?.unwrap_or("pseudograph");
    let algo: Method = algo_name
        .parse()
        .map_err(|e: String| ReqError::new("bad_knob", e))?;
    let seed = req.opt_u64("seed")?.unwrap_or(DEFAULT_SEED);
    let source = {
        let slot = reg.slot(from)?;
        let state = lock(&slot);
        state.graph.clone()
    };
    // generation materializes a census and a graph on the source's
    // scale: gate it on the same fixed-footprint floor as a metric pass
    reg.admit(source.node_count(), source.edge_count(), &[], 8, None)?;
    let generated = if algo.needs_reference() {
        Generator::new(algo)
            .seed(seed)
            .reference(&source)
            .build_randomized(d)
    } else {
        let dist = AnyDist::from_graph(d, &source)
            .map_err(|e| ReqError::new("bad_knob", format!("cannot extract {d}K: {e}")))?;
        Generator::new(algo).seed(seed).build(&dist)
    }
    .map_err(|e| ReqError::new("bad_knob", format!("generation failed: {e}")))?;
    let g = generated.graph;
    let (n, m) = (g.node_count(), g.edge_count());
    let epoch = reg.install(name, g);
    let mut fields = ok_head("generate-into");
    fields.extend([
        ("graph".into(), quoted(name)),
        ("from".into(), quoted(from)),
        ("algo".into(), quoted(&algo.to_string())),
        ("d".into(), d.to_string()),
        ("epoch".into(), epoch.to_string()),
        ("n".into(), n.to_string()),
        ("m".into(), m.to_string()),
    ]);
    Ok(json::object(fields))
}

fn parse_order(req: &Req<'_>) -> Result<u8, ReqError> {
    match req.opt_u64("d")? {
        Some(d) if d <= 3 => Ok(d as u8),
        Some(d) => Err(ReqError::new(
            "bad_knob",
            format!("knob \"d\" must be 0..=3, got {d}"),
        )),
        None => Err(ReqError::new("bad_request", "missing required field \"d\"")),
    }
}

fn op_stats(reg: &Registry) -> String {
    let graphs = json::object(reg.listing().into_iter().map(|(name, epoch, n, m, warm)| {
        (
            name,
            json::object([
                ("epoch".into(), epoch.to_string()),
                ("n".into(), n.to_string()),
                ("m".into(), m.to_string()),
                ("warm".into(), warm.to_string()),
            ]),
        )
    }));
    let c = &reg.counters;
    let counters = json::object([
        ("served".into(), Counters::get(&c.served).to_string()),
        ("computed".into(), Counters::get(&c.computed).to_string()),
        ("coalesced".into(), Counters::get(&c.coalesced).to_string()),
        ("memo_hits".into(), Counters::get(&c.memo_hits).to_string()),
        ("rejected".into(), Counters::get(&c.rejected).to_string()),
    ]);
    let mut fields = ok_head("stats");
    fields.extend([("graphs".into(), graphs), ("counters".into(), counters)]);
    json::object(fields)
}

fn op_shutdown(reg: &Registry) -> String {
    reg.shutdown.store(true, Ordering::SeqCst);
    json::object(ok_head("shutdown"))
}

// ---------------------------------------------------------------------
// Socket layer
// ---------------------------------------------------------------------

/// A running daemon: accept thread + per-connection threads, stoppable
/// from tests and from the CLI.
pub struct Server {
    registry: Arc<Registry>,
    socket: PathBuf,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.socket` and spawns the accept loop.
    ///
    /// A pre-existing file at the path is only removed when it is a
    /// socket nobody answers on (a stale file left by a dead daemon):
    /// if a live daemon accepts a connection the bind is refused with
    /// `AddrInUse`, and a non-socket file is never deleted.
    pub fn spawn(config: &ServerConfig) -> std::io::Result<Server> {
        use std::os::unix::fs::FileTypeExt;
        match std::fs::symlink_metadata(&config.socket) {
            Ok(meta) if meta.file_type().is_socket() => {
                if UnixStream::connect(&config.socket).is_ok() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::AddrInUse,
                        format!("a daemon is already listening on {:?}", config.socket),
                    ));
                }
                std::fs::remove_file(&config.socket)?;
            }
            Ok(_) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    format!(
                        "{:?} exists and is not a socket; refusing to replace it",
                        config.socket
                    ),
                ));
            }
            Err(_) => {}
        }
        let listener = UnixListener::bind(&config.socket)?;
        let registry = Arc::new(Registry::new(config.memory_budget, config.threads));
        let reg = registry.clone();
        let socket = config.socket.clone();
        let accept = std::thread::spawn(move || accept_loop(&listener, &reg, &socket));
        Ok(Server {
            registry,
            socket: config.socket.clone(),
            accept: Some(accept),
        })
    }

    /// The shared registry (tests read the counters through this).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Requests shutdown and joins the accept loop. Idempotent with a
    /// client-sent `shutdown` op.
    pub fn stop(mut self) {
        self.registry.shutdown.store(true, Ordering::SeqCst);
        // wake the blocking accept() with a throwaway connection
        let _ = UnixStream::connect(&self.socket);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

/// Runs a daemon in the foreground until a `shutdown` op arrives (the
/// blocking entry point `dk serve` uses).
pub fn run(config: &ServerConfig) -> std::io::Result<()> {
    let mut server = Server::spawn(config)?;
    if let Some(handle) = server.accept.take() {
        let _ = handle.join();
    }
    let _ = std::fs::remove_file(&server.socket);
    Ok(())
}

fn accept_loop(listener: &UnixListener, reg: &Arc<Registry>, socket: &Path) {
    // each entry keeps a second handle on the connection so shutdown can
    // unblock a thread parked in read_line before joining it
    let mut conns: Vec<(UnixStream, JoinHandle<()>)> = Vec::new();
    for stream in listener.incoming() {
        if reg.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // reap finished connections so a long-lived daemon does not
        // accumulate dead join handles (and their cloned descriptors)
        let (done, live): (Vec<_>, Vec<_>) = conns.into_iter().partition(|(_, h)| h.is_finished());
        conns = live;
        for (_, handle) in done {
            let _ = handle.join();
        }
        let Ok(stream) = stream else { continue };
        let Ok(peer) = stream.try_clone() else {
            continue;
        };
        let reg = reg.clone();
        let socket = socket.to_path_buf();
        conns.push((
            peer,
            std::thread::spawn(move || serve_connection(stream, &reg, &socket)),
        ));
    }
    for (peer, handle) in conns {
        let _ = peer.shutdown(std::net::Shutdown::Both);
        let _ = handle.join();
    }
}

/// Handles one connection: requests are read and answered strictly in
/// order. Returns (closing the connection) on EOF, I/O errors, an
/// oversized request, or server shutdown.
fn serve_connection(stream: UnixStream, reg: &Arc<Registry>, socket: &Path) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    loop {
        if reg.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let mut line = String::new();
        match (&mut reader)
            .take((MAX_REQUEST_BYTES + 2) as u64)
            .read_line(&mut line)
        {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        let oversized = trimmed.len() > MAX_REQUEST_BYTES;
        let response = if oversized {
            reg.counters.served.fetch_add(1, Ordering::Relaxed);
            ReqError::new(
                "oversized",
                format!("request line exceeds {MAX_REQUEST_BYTES} bytes; closing connection"),
            )
            .to_response()
        } else {
            handle_line(reg, trimmed)
        };
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if reg.shutdown.load(Ordering::SeqCst) {
            // a shutdown op was just answered: the accept loop is still
            // parked in accept(); a throwaway connection unblocks it so
            // the daemon can exit without waiting for a new client
            let _ = UnixStream::connect(socket);
            return;
        }
        if oversized {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::Graph;
    use std::sync::mpsc;
    use std::thread;
    use std::time::Duration;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge((i - 1) as u32, i as u32).expect("valid edge");
        }
        g
    }

    /// Regression (review): flight/memo keys embed the graph name —
    /// the flight table is registry-global, so without the name two
    /// same-epoch graphs with identical knobs would coalesce onto one
    /// computation and one would receive the other's response body.
    #[test]
    fn flight_keys_embed_the_graph_name() {
        assert_ne!(metric_key("a", 1, "cheap"), metric_key("b", 1, "cheap"));
        assert!(metric_key("a", 1, "cheap").starts_with("g=a;e1:"));
    }

    /// Behavioral half of the regression: while graph `a`'s flight is
    /// open, an identical-knob request on graph `b` (same epoch) must
    /// compute its own body instead of parking behind `a`'s.
    #[test]
    fn same_epoch_requests_on_different_graphs_do_not_coalesce() {
        let reg = Arc::new(Registry::new(None, 1));
        reg.install("a", path_graph(3));
        reg.install("b", path_graph(5));
        let slot_a = reg.slot("a").expect("loaded");
        let slot_b = reg.slot("b").expect("loaded");
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let leader = {
            let reg = reg.clone();
            thread::spawn(move || {
                reg.coalesce(&slot_a, 1, &metric_key("a", 1, "cheap"), move || {
                    let _ = release_rx.recv();
                    Ok("a-body".to_string())
                })
            })
        };
        while Counters::get(&reg.counters.computed) == 0 {
            thread::sleep(Duration::from_millis(1));
        }
        let body = reg
            .coalesce(&slot_b, 1, &metric_key("b", 1, "cheap"), || {
                Ok("b-body".to_string())
            })
            .expect("ok");
        assert_eq!(body, "b-body", "graph b computed its own response");
        assert_eq!(Counters::get(&reg.counters.coalesced), 0);
        assert_eq!(Counters::get(&reg.counters.computed), 2);
        release_tx.send(()).expect("leader is waiting");
        assert_eq!(leader.join().expect("leader").expect("ok"), "a-body");
    }
}

//! Minimal blocking client for the serve protocol: one request line
//! out, one response line back. Used by `dk client` and by the
//! integration tests / perf bench.

use crate::protocol::MAX_REQUEST_BYTES;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// A connected protocol client. Requests sent through one client are
/// answered strictly in order (the server handles each connection
/// sequentially).
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to a daemon's Unix socket.
    pub fn connect(socket: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(socket)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line and reads the one response line (without
    /// its trailing newline). `request` must not contain a newline.
    pub fn request(&mut self, request: &str) -> std::io::Result<String> {
        if request.len() > MAX_REQUEST_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("request exceeds {MAX_REQUEST_BYTES} bytes"),
            ));
        }
        if request.contains('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "request must be a single line",
            ));
        }
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

/// Connects, sends one request, returns the response line.
pub fn one_shot(socket: &Path, request: &str) -> std::io::Result<String> {
    Client::connect(socket)?.request(request)
}

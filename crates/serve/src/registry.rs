//! The daemon's shared state: named graphs with warm caches and epochs,
//! the in-flight coalescing table, the per-epoch response memo, and the
//! admission-control gate.
//!
//! # Epochs
//!
//! Every registry entry carries a monotonically increasing **epoch**.
//! Mutation verbs (`load`, `rewire`, `generate-into`) bump it and drop
//! the entry's warm [`AnalysisCache`] and response memo atomically
//! under the entry lock, so analysis started before a mutation can
//! never publish its (now stale) cache or memoized response back into
//! the entry: publication re-checks the epoch first. Read verbs stamp
//! the epoch they observed into their flight/memo keys, which makes a
//! stale hit structurally impossible rather than merely unlikely.
//!
//! # Coalescing
//!
//! Identical concurrent work — same `(graph, epoch, op, knobs)` key —
//! collapses onto one computation: the first requester inserts a
//! [`Flight`] and computes; later arrivals find the flight, park on its
//! condvar, and are counted in [`Counters::coalesced`]. The flight
//! table is registry-global, so every key embeds the graph *name* as
//! well as the observed epoch — two same-epoch graphs must never share
//! a flight. A computation that panics still resolves its flight (with
//! a structured `io` error) on unwind, so followers are never wedged.
//! Completed responses are memoized per entry (keyed by the same
//! string), so *sequential* repeats are also free
//! ([`Counters::memo_hits`]) until the next mutation clears the memo.
//!
//! # Admission
//!
//! [`Registry::admit`] prices a request before any allocation using the
//! exact byte model the streamed executor plans with
//! ([`dk_metrics::stream::fixed_bytes`] /
//! [`dk_metrics::stream::per_worker_bytes`], plus HyperANF register
//! sheets when a sketch metric is selected). Requests whose *minimum*
//! footprint (one worker) exceeds the effective budget — the smaller of
//! the server-wide `--memory-budget` and the request's own
//! `memory_budget` knob — are rejected with a structured `over_budget`
//! error. Admitted requests carry the effective budget into the
//! analyzer, which lowers the worker count / takes the streamed route
//! to stay inside it; the daemon never OOMs on an admitted request.

use crate::protocol::ReqError;
use dk_graph::hashers::DetHashMap;
use dk_graph::Graph;
use dk_metrics::metric::Cost;
use dk_metrics::{AnalysisCache, AnyMetric};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Locks a mutex, recovering the data from a poisoned lock (a panicking
/// handler thread must not wedge the whole daemon).
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Monotonic event counters, readable via the `stats` op. Counter
/// values reflect scheduling (how many requests raced) and are the one
/// part of the protocol exempt from the byte-identity contract.
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests answered (including errors).
    pub served: AtomicU64,
    /// Computations actually executed (cache builds + metric passes).
    pub computed: AtomicU64,
    /// Requests that piggybacked on an identical in-flight computation.
    pub coalesced: AtomicU64,
    /// Requests answered from the per-epoch response memo.
    pub memo_hits: AtomicU64,
    /// Requests rejected by admission control (`over_budget`).
    pub rejected: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value of a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// A warm analysis cache retained by a registry entry, valid only while
/// the entry's epoch matches and only for the knob key it was built
/// under.
pub struct WarmCache {
    /// Canonical knob key (metric list + analysis knobs) the cache's
    /// dependency passes were planned for.
    pub knobs: String,
    /// Epoch of the graph snapshot the cache was built from.
    pub epoch: u64,
    /// The cache itself; `'static` because it owns its graph copy.
    pub cache: Arc<AnalysisCache<'static>>,
}

/// Mutable state of one named graph.
pub struct GraphState {
    /// Generation counter; bumped by every mutation verb.
    pub epoch: u64,
    /// Frozen snapshot handed to readers (cheap `Arc` clone under the
    /// entry lock; all computation happens outside it).
    pub graph: Arc<Graph>,
    /// Warm cache from the most recent metric pass, if still valid.
    pub warm: Option<WarmCache>,
    /// Completed response bodies keyed by `(graph, epoch, op, knobs)`
    /// strings; cleared on mutation.
    pub memo: DetHashMap<String, String>,
}

/// One named graph: a lock around its [`GraphState`].
pub type GraphSlot = Arc<Mutex<GraphState>>;

/// One in-flight computation other requests can coalesce onto.
struct Flight {
    /// `None` while computing; the finished response body after.
    result: Mutex<Option<Result<String, ReqError>>>,
    done: Condvar,
}

/// The daemon's shared state (see the [module docs](self)).
pub struct Registry {
    graphs: Mutex<DetHashMap<String, GraphSlot>>,
    flights: Mutex<DetHashMap<String, Arc<Flight>>>,
    /// Event counters (`stats` op).
    pub counters: Counters,
    /// Server-wide memory budget (`dk serve --memory-budget`).
    pub memory_budget: Option<u64>,
    /// Thread budget handed to each analysis pass (`dk serve
    /// --threads`). Metric values are thread-count invariant (the PR 4
    /// ordered-fold contract), so this affects latency only.
    pub threads: usize,
    /// Set by the `shutdown` op; the accept loop exits when it sees it.
    pub shutdown: AtomicBool,
}

impl Registry {
    /// An empty registry with the given server-wide budgets.
    pub fn new(memory_budget: Option<u64>, threads: usize) -> Registry {
        Registry {
            graphs: Mutex::new(DetHashMap::default()),
            flights: Mutex::new(DetHashMap::default()),
            counters: Counters::default(),
            memory_budget,
            threads: threads.max(1),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The slot registered under `name`, or an `unknown_graph` error.
    pub fn slot(&self, name: &str) -> Result<GraphSlot, ReqError> {
        lock(&self.graphs).get(name).cloned().ok_or_else(|| {
            ReqError::new(
                "unknown_graph",
                format!("no graph named {name:?} is loaded (use the load op first)"),
            )
        })
    }

    /// Installs `graph` under `name`, bumping the epoch and atomically
    /// dropping any warm cache and memoized responses. Returns the new
    /// epoch.
    pub fn install(&self, name: &str, graph: Graph) -> u64 {
        let slot = {
            let mut graphs = lock(&self.graphs);
            graphs
                .entry(name.to_string())
                .or_insert_with(|| {
                    Arc::new(Mutex::new(GraphState {
                        epoch: 0,
                        graph: Arc::new(Graph::with_nodes(0)),
                        warm: None,
                        memo: DetHashMap::default(),
                    }))
                })
                .clone()
        };
        let mut state = lock(&slot);
        state.epoch += 1;
        state.graph = Arc::new(graph);
        state.warm = None;
        state.memo.clear();
        state.epoch
    }

    /// `(name, epoch, nodes, edges, warm?)` for every entry, sorted by
    /// name (the `stats` op must not leak hash-map iteration order).
    pub fn listing(&self) -> Vec<(String, u64, usize, usize, bool)> {
        let slots: Vec<(String, GraphSlot)> = {
            let graphs = lock(&self.graphs);
            let mut pairs: Vec<(String, GraphSlot)> =
                graphs.iter().map(|(n, s)| (n.clone(), s.clone())).collect();
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            pairs
        };
        slots
            .into_iter()
            .map(|(name, slot)| {
                let state = lock(&slot);
                (
                    name,
                    state.epoch,
                    state.graph.node_count(),
                    state.graph.edge_count(),
                    state.warm.is_some(),
                )
            })
            .collect()
    }

    /// Runs `compute` under the coalescing/memo discipline for `key`
    /// (which must already embed the graph name and the observed
    /// epoch — the flight table is registry-global):
    ///
    /// 1. memo hit on `slot` → replay the stored response;
    /// 2. identical flight in progress → park, count as coalesced,
    ///    return its result;
    /// 3. otherwise compute (counted in [`Counters::computed`]), publish
    ///    to the memo if the epoch is still current, wake waiters.
    pub fn coalesce(
        &self,
        slot: &GraphSlot,
        epoch: u64,
        key: &str,
        compute: impl FnOnce() -> Result<String, ReqError>,
    ) -> Result<String, ReqError> {
        if let Some(hit) = lock(slot).memo.get(key) {
            Counters::bump(&self.counters.memo_hits);
            return Ok(hit.clone());
        }
        let (flight, leader) = {
            let mut flights = lock(&self.flights);
            match flights.get(key) {
                Some(f) => (f.clone(), false),
                None => {
                    let f = Arc::new(Flight {
                        result: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    flights.insert(key.to_string(), f.clone());
                    (f, true)
                }
            }
        };
        if !leader {
            Counters::bump(&self.counters.coalesced);
            let mut result = lock(&flight.result);
            while result.is_none() {
                result = flight
                    .done
                    .wait(result)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            return result
                .clone()
                .unwrap_or_else(|| Err(ReqError::new("io", "in-flight computation vanished")));
        }
        Counters::bump(&self.counters.computed);
        // resolve-on-drop guard: if `compute` panics, the unwind still
        // publishes an error result, wakes parked followers, and frees
        // the key — otherwise the flight would wedge forever (current
        // followers *and* every future identical request).
        struct Resolve<'a> {
            reg: &'a Registry,
            flight: &'a Flight,
            key: &'a str,
        }
        impl Drop for Resolve<'_> {
            fn drop(&mut self) {
                let mut result = lock(&self.flight.result);
                if result.is_none() {
                    *result = Some(Err(ReqError::new(
                        "io",
                        "the computation serving this request panicked",
                    )));
                }
                drop(result);
                self.flight.done.notify_all();
                lock(&self.reg.flights).remove(self.key);
            }
        }
        let resolve = Resolve {
            reg: self,
            flight: &flight,
            key,
        };
        let outcome = compute();
        if let Ok(body) = &outcome {
            let mut state = lock(slot);
            if state.epoch == epoch {
                state.memo.insert(key.to_string(), body.clone());
            }
        }
        *lock(&flight.result) = Some(outcome.clone());
        drop(resolve);
        outcome
    }

    /// Admission gate (see the [module docs](self)): `Ok(effective
    /// budget)` to pass into the analyzer, or an `over_budget` error.
    pub fn admit(
        &self,
        nodes: usize,
        edges: usize,
        metrics: &[AnyMetric],
        sketch_bits: u32,
        request_budget: Option<u64>,
    ) -> Result<Option<u64>, ReqError> {
        let effective = match (self.memory_budget, request_budget) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let Some(budget) = effective else {
            return Ok(None);
        };
        let mut min_bytes = dk_metrics::stream::fixed_bytes(nodes, edges)
            .saturating_add(dk_metrics::stream::per_worker_bytes(nodes));
        if metrics.iter().any(|m| m.cost() == Cost::Sketch) {
            let registers = (nodes as u64)
                .saturating_mul(1u64 << sketch_bits)
                .saturating_mul(2);
            min_bytes = min_bytes.saturating_add(registers);
        }
        if budget < min_bytes {
            Counters::bump(&self.counters.rejected);
            return Err(ReqError::new(
                "over_budget",
                format!(
                    "request needs at least {min_bytes} bytes \
                     (n = {nodes}, m = {edges}, single worker) but the \
                     effective memory budget is {budget} bytes"
                ),
            ));
        }
        Ok(Some(budget))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::thread;
    use std::time::Duration;

    fn registry_with(name: &str, g: Graph) -> Registry {
        let reg = Registry::new(None, 1);
        reg.install(name, g);
        reg
    }

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge((i - 1) as u32, i as u32).expect("valid edge");
        }
        g
    }

    #[test]
    fn install_bumps_epoch_and_clears_warm_state() {
        let reg = registry_with("g", path_graph(3));
        let slot = reg.slot("g").expect("loaded");
        lock(&slot)
            .memo
            .insert("k".to_string(), "cached".to_string());
        assert_eq!(reg.install("g", path_graph(5)), 2);
        let state = lock(&slot);
        assert_eq!(state.epoch, 2);
        assert_eq!(state.graph.node_count(), 5);
        assert!(state.warm.is_none());
        assert!(state.memo.is_empty());
    }

    #[test]
    fn unknown_graph_is_a_structured_error() {
        let reg = Registry::new(None, 1);
        let err = reg.slot("nope").err().expect("missing graph rejected");
        assert_eq!(err.code, "unknown_graph");
    }

    #[test]
    fn memo_replays_and_mutation_invalidates() {
        let reg = registry_with("g", path_graph(3));
        let slot = reg.slot("g").expect("loaded");
        let body = reg
            .coalesce(&slot, 1, "e1:metric:x", || Ok("body".to_string()))
            .expect("ok");
        assert_eq!(body, "body");
        assert_eq!(Counters::get(&reg.counters.computed), 1);
        // replay: no second compute
        let again = reg
            .coalesce(&slot, 1, "e1:metric:x", || {
                Err(ReqError::new("io", "must not recompute"))
            })
            .expect("memo hit");
        assert_eq!(again, "body");
        assert_eq!(Counters::get(&reg.counters.memo_hits), 1);
        // mutation clears the memo; the new epoch key recomputes
        reg.install("g", path_graph(3));
        let fresh = reg
            .coalesce(&slot, 2, "e2:metric:x", || Ok("fresh".to_string()))
            .expect("ok");
        assert_eq!(fresh, "fresh");
        assert_eq!(Counters::get(&reg.counters.computed), 2);
    }

    #[test]
    fn stale_epoch_does_not_publish_into_the_memo() {
        let reg = registry_with("g", path_graph(3));
        let slot = reg.slot("g").expect("loaded");
        // a compute that observed epoch 1 finishes after a mutation
        let body = reg
            .coalesce(&slot, 1, "e1:metric:x", || {
                reg.install("g", path_graph(4));
                Ok("stale".to_string())
            })
            .expect("ok");
        assert_eq!(body, "stale"); // the waiter still gets its answer…
        assert!(lock(&slot).memo.is_empty()); // …but nothing is cached
    }

    /// The coalescing proof: two identical requests race, the leader
    /// blocks inside `compute` until the follower has parked, and the
    /// counters show exactly one computation served both.
    #[test]
    fn concurrent_identical_requests_coalesce() {
        let reg = Arc::new(registry_with("g", path_graph(3)));
        let slot = reg.slot("g").expect("loaded");
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let leader = {
            let reg = reg.clone();
            let slot = slot.clone();
            thread::spawn(move || {
                reg.coalesce(&slot, 1, "e1:metric:slow", move || {
                    release_rx
                        .recv()
                        .map_err(|_| ReqError::new("io", "release channel closed"))?;
                    Ok("slow-body".to_string())
                })
            })
        };
        // wait until the leader holds the flight, then start a follower
        while Counters::get(&reg.counters.computed) == 0 {
            thread::sleep(Duration::from_millis(1));
        }
        let follower = {
            let reg = reg.clone();
            let slot = slot.clone();
            thread::spawn(move || {
                reg.coalesce(&slot, 1, "e1:metric:slow", || {
                    Err(ReqError::new("io", "follower must never compute"))
                })
            })
        };
        // the follower must park on the flight before we release
        while Counters::get(&reg.counters.coalesced) == 0 {
            thread::sleep(Duration::from_millis(1));
        }
        release_tx.send(()).expect("leader is waiting");
        let a = leader.join().expect("leader").expect("ok");
        let b = follower.join().expect("follower").expect("ok");
        assert_eq!(a, "slow-body");
        assert_eq!(b, "slow-body");
        assert_eq!(Counters::get(&reg.counters.computed), 1);
        assert_eq!(Counters::get(&reg.counters.coalesced), 1);
    }

    /// Panic safety: a leader that panics inside `compute` must still
    /// resolve the flight — parked followers get a structured `io`
    /// error, and the key is freed so the next request recomputes
    /// instead of parking on a wedged flight forever.
    #[test]
    fn panicking_compute_does_not_wedge_the_flight() {
        let reg = Arc::new(registry_with("g", path_graph(3)));
        let slot = reg.slot("g").expect("loaded");
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let leader = {
            let reg = reg.clone();
            let slot = slot.clone();
            thread::spawn(move || {
                reg.coalesce(&slot, 1, "g=g;e1:metric:boom", move || {
                    let _ = release_rx.recv();
                    panic!("computation exploded");
                })
            })
        };
        while Counters::get(&reg.counters.computed) == 0 {
            thread::sleep(Duration::from_millis(1));
        }
        let follower = {
            let reg = reg.clone();
            let slot = slot.clone();
            thread::spawn(move || {
                reg.coalesce(&slot, 1, "g=g;e1:metric:boom", || {
                    Err(ReqError::new("io", "follower must never compute"))
                })
            })
        };
        while Counters::get(&reg.counters.coalesced) == 0 {
            thread::sleep(Duration::from_millis(1));
        }
        release_tx.send(()).expect("leader is waiting");
        assert!(leader.join().is_err(), "leader panicked");
        let err = follower
            .join()
            .expect("follower thread survives")
            .expect_err("follower sees the failure");
        assert_eq!(err.code, "io");
        // nothing was memoized and the key is free again: recomputes
        let fresh = reg
            .coalesce(&slot, 1, "g=g;e1:metric:boom", || Ok("fresh".to_string()))
            .expect("ok");
        assert_eq!(fresh, "fresh");
        assert_eq!(Counters::get(&reg.counters.computed), 2);
    }

    #[test]
    fn admission_rejects_undersized_budgets_and_takes_the_min() {
        let reg = Registry::new(Some(1 << 30), 1);
        let metrics = AnyMetric::cheap_set();
        // no request budget: the generous server budget admits
        assert_eq!(
            reg.admit(100, 200, &metrics, 8, None).expect("admitted"),
            Some(1 << 30)
        );
        // a tiny request budget wins the min and rejects
        let err = reg.admit(100, 200, &metrics, 8, Some(64)).unwrap_err();
        assert_eq!(err.code, "over_budget");
        assert_eq!(Counters::get(&reg.counters.rejected), 1);
        // no budgets anywhere: always admitted
        let open = Registry::new(None, 1);
        assert_eq!(open.admit(1 << 20, 1 << 22, &metrics, 8, None), Ok(None));
    }

    #[test]
    fn admission_prices_sketch_registers_in() {
        let sketchy: Vec<AnyMetric> = AnyMetric::all()
            .filter(|m| m.cost() == Cost::Sketch)
            .collect();
        assert!(!sketchy.is_empty(), "sketch metrics exist");
        let n = 10_000;
        let m = 20_000;
        let plain_floor =
            dk_metrics::stream::fixed_bytes(n, m) + dk_metrics::stream::per_worker_bytes(n);
        // a budget that fits the plain floor but not the register sheets
        let reg = Registry::new(Some(plain_floor + 1), 1);
        assert!(reg.admit(n, m, &AnyMetric::cheap_set(), 8, None).is_ok());
        assert_eq!(
            reg.admit(n, m, &sketchy, 8, None).unwrap_err().code,
            "over_budget"
        );
    }
}

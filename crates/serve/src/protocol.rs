//! Wire types of the serve protocol: request field access over the
//! shared [`dk_json`] parser and response emission over
//! [`dk_metrics::json`].
//!
//! One request is one JSON object on one line; one response is one JSON
//! object on one line. The full op catalogue lives in the crate-level
//! docs ([`crate`]). This module holds the pieces both the server and
//! the tests need: the size cap, the structured error shape, the typed
//! field accessors, and the **tagged** metric-value encoding that
//! distinguishes `Undefined` from non-finite floats (both of which the
//! report JSON collapses to `null` — a serve client must be able to
//! tell them apart without re-deriving the metric).

use dk_json::JsonValue;
use dk_metrics::json;
use dk_metrics::MetricValue;

/// Hard cap on one request line, in bytes (1 MiB). Longer lines get an
/// `oversized` error and the connection is closed — the daemon never
/// buffers unbounded client input.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// A structured protocol error: machine-readable `code`, human-readable
/// `message`. Serialized as `{"ok":false,"error":{"code":…,"message":…}}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReqError {
    /// Stable machine-readable code (see [`crate`] docs for the list).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ReqError {
    /// Builds an error with the given code and message.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        ReqError {
            code,
            message: message.into(),
        }
    }

    /// The response line (without trailing newline).
    pub fn to_response(&self) -> String {
        json::object([
            ("ok".into(), "false".into()),
            (
                "error".into(),
                json::object([
                    ("code".into(), quoted(self.code)),
                    ("message".into(), quoted(&self.message)),
                ]),
            ),
        ])
    }
}

/// Serializes `s` as a JSON string.
pub fn quoted(s: &str) -> String {
    format!("\"{}\"", json::escape(s))
}

/// Tagged wire encoding of a [`MetricValue`] (serve responses only; the
/// report JSON written by `dk metrics` keeps its historical untagged
/// shape):
///
/// * finite scalar — `{"status":"ok","value":N}`
/// * non-finite scalar — `{"status":"not_finite","repr":"nan"|"inf"|"-inf"}`
/// * undefined — `{"status":"undefined"}`
/// * series — `{"status":"ok","series":[[x,y],…]}` (non-finite `y`
///   entries keep the report convention and render as `null`)
pub fn tagged_value(value: &MetricValue) -> String {
    match value {
        MetricValue::Scalar(x) if x.is_finite() => json::object([
            ("status".into(), quoted("ok")),
            ("value".into(), json::number(*x)),
        ]),
        MetricValue::Scalar(x) => {
            let repr = if x.is_nan() {
                "nan"
            } else if *x > 0.0 {
                "inf"
            } else {
                "-inf"
            };
            json::object([
                ("status".into(), quoted("not_finite")),
                ("repr".into(), quoted(repr)),
            ])
        }
        MetricValue::Undefined => json::object([("status".into(), quoted("undefined"))]),
        MetricValue::Series(s) => json::object([
            ("status".into(), quoted("ok")),
            (
                "series".into(),
                json::array(
                    s.iter()
                        .map(|&(x, y)| json::array([x.to_string(), json::number(y)])),
                ),
            ),
        ]),
    }
}

/// Typed field access over a parsed request object. Every accessor
/// returns a [`ReqError`] with code `bad_request` (wrong shape /
/// missing required field) or `bad_knob` (present but out of range) so
/// the dispatch code stays linear.
pub struct Req<'a> {
    value: &'a JsonValue,
}

impl<'a> Req<'a> {
    /// Wraps a parsed request; errors unless it is a JSON object.
    pub fn new(value: &'a JsonValue) -> Result<Req<'a>, ReqError> {
        match value {
            JsonValue::Object(_) => Ok(Req { value }),
            other => Err(ReqError::new(
                "bad_request",
                format!("request must be a JSON object, got {}", other.type_name()),
            )),
        }
    }

    fn field(&self, key: &str) -> Option<&'a JsonValue> {
        self.value.get(key)
    }

    /// Required string field.
    pub fn str_field(&self, key: &str) -> Result<&'a str, ReqError> {
        match self.field(key) {
            Some(v) => v.as_str().ok_or_else(|| {
                ReqError::new(
                    "bad_request",
                    format!("field {key:?} must be a string, got {}", v.type_name()),
                )
            }),
            None => Err(ReqError::new(
                "bad_request",
                format!("missing required field {key:?}"),
            )),
        }
    }

    /// Optional string field.
    pub fn opt_str(&self, key: &str) -> Result<Option<&'a str>, ReqError> {
        self.field(key).map_or(Ok(None), |v| {
            v.as_str().map(Some).ok_or_else(|| {
                ReqError::new(
                    "bad_knob",
                    format!("knob {key:?} must be a string, got {}", v.type_name()),
                )
            })
        })
    }

    /// Optional non-negative integer knob (rejects fractions, negatives
    /// and anything beyond 2^53).
    pub fn opt_u64(&self, key: &str) -> Result<Option<u64>, ReqError> {
        self.field(key).map_or(Ok(None), |v| {
            v.as_u64().map(Some).ok_or_else(|| {
                ReqError::new(
                    "bad_knob",
                    format!("knob {key:?} must be a non-negative integer"),
                )
            })
        })
    }

    /// Optional boolean knob.
    pub fn opt_bool(&self, key: &str) -> Result<Option<bool>, ReqError> {
        self.field(key).map_or(Ok(None), |v| {
            v.as_bool().map(Some).ok_or_else(|| {
                ReqError::new(
                    "bad_knob",
                    format!("knob {key:?} must be true or false, got {}", v.type_name()),
                )
            })
        })
    }

    /// Optional array-of-numbers knob (the attack `checkpoints` list).
    pub fn opt_f64_array(&self, key: &str) -> Result<Option<Vec<f64>>, ReqError> {
        let Some(v) = self.field(key) else {
            return Ok(None);
        };
        let items = v.as_array().ok_or_else(|| {
            ReqError::new(
                "bad_knob",
                format!("knob {key:?} must be an array of numbers"),
            )
        })?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            out.push(item.as_f64().ok_or_else(|| {
                ReqError::new(
                    "bad_knob",
                    format!("knob {key:?} must contain only numbers"),
                )
            })?);
        }
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_encoding_distinguishes_null_cases() {
        assert_eq!(
            tagged_value(&MetricValue::Scalar(1.5)),
            r#"{"status":"ok","value":1.5}"#
        );
        assert_eq!(
            tagged_value(&MetricValue::Scalar(f64::NAN)),
            r#"{"status":"not_finite","repr":"nan"}"#
        );
        assert_eq!(
            tagged_value(&MetricValue::Scalar(f64::INFINITY)),
            r#"{"status":"not_finite","repr":"inf"}"#
        );
        assert_eq!(
            tagged_value(&MetricValue::Scalar(f64::NEG_INFINITY)),
            r#"{"status":"not_finite","repr":"-inf"}"#
        );
        assert_eq!(
            tagged_value(&MetricValue::Undefined),
            r#"{"status":"undefined"}"#
        );
        assert_eq!(
            tagged_value(&MetricValue::Series(vec![(1, 0.5), (2, f64::NAN)])),
            r#"{"status":"ok","series":[[1,0.5],[2,null]]}"#
        );
    }

    #[test]
    fn error_response_shape() {
        let resp = ReqError::new("unknown_op", "no such op \"zap\"").to_response();
        assert_eq!(
            resp,
            r#"{"ok":false,"error":{"code":"unknown_op","message":"no such op \"zap\""}}"#
        );
        // the error line itself round-trips through the shared parser
        let v = dk_json::JsonValue::parse(&resp).expect("valid JSON");
        assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false));
    }

    #[test]
    fn typed_accessors_reject_wrong_shapes() {
        let v = dk_json::JsonValue::parse(
            r#"{"op":"metric","n":3,"frac":[0.1,0.5],"flag":true,"bad":-1}"#,
        )
        .expect("valid");
        let req = Req::new(&v).expect("object");
        assert_eq!(req.str_field("op").expect("string"), "metric");
        assert_eq!(req.opt_u64("n").expect("u64"), Some(3));
        assert_eq!(req.opt_u64("missing").expect("absent ok"), None);
        assert_eq!(req.opt_bool("flag").expect("bool"), Some(true));
        assert_eq!(
            req.opt_f64_array("frac").expect("array"),
            Some(vec![0.1, 0.5])
        );
        assert_eq!(req.str_field("missing").unwrap_err().code, "bad_request");
        assert_eq!(req.opt_u64("bad").unwrap_err().code, "bad_knob");
        assert_eq!(req.opt_bool("n").unwrap_err().code, "bad_knob");
        assert_eq!(req.opt_f64_array("flag").unwrap_err().code, "bad_knob");
        let arr = dk_json::JsonValue::parse("[1]").expect("valid");
        let err = Req::new(&arr).err().expect("non-object rejected");
        assert_eq!(err.code, "bad_request");
    }
}

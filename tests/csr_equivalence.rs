//! CSR equivalence suite: the frozen-snapshot port of every analysis
//! traversal must be **byte-identical** to the pre-CSR values, and the
//! sampled (Brandes–Pich) estimators must be deterministic, within
//! tolerance of exact, and *equal* to exact when `samples ≥ n`.
//!
//! Golden anchors: K5 / S5 / C6 closed forms and Zachary's karate club
//! (the same anchors `analyzer_golden.rs` pins for the exact metrics).

use dk_repro::graph::builders;
use dk_repro::graph::csr::CsrGraph;
use dk_repro::graph::{traversal, Graph};
use dk_repro::metrics::{betweenness, sampled, Analyzer, Report};

fn close(got: f64, want: f64, what: &str) {
    assert!((got - want).abs() < 1e-9, "{what}: got {got}, want {want}");
}

/// The graphs every equivalence check runs over: the golden anchors plus
/// a disconnected graph (unreachable-pair accounting) and a graph with
/// isolated nodes (GCC extraction path).
fn zoo() -> Vec<Graph> {
    let mut with_isolated = builders::karate_club();
    with_isolated.add_node();
    with_isolated.add_node();
    vec![
        builders::complete(5),
        builders::star(5),
        builders::cycle(6),
        builders::karate_club(),
        Graph::from_edges(7, [(0, 1), (2, 3), (3, 4), (4, 2), (5, 6)]).unwrap(),
        with_isolated,
    ]
}

// ---------------------------------------------------------------------
// CSR-backed metrics are byte-identical to the legacy adjacency walk
// ---------------------------------------------------------------------

#[test]
fn fused_pass_bit_identical_to_legacy_adjacency_walk() {
    for g in zoo() {
        for threads in [1, 4] {
            let ported = betweenness::betweenness_and_distances_with_threads(&g, threads);
            let legacy = betweenness::betweenness_and_distances_adjacency(&g, threads);
            // Vec<f64> equality is exact — any rounding drift fails
            assert_eq!(ported.betweenness, legacy.betweenness);
            assert_eq!(ported.distances, legacy.distances);
        }
    }
}

#[test]
fn analyzer_reports_unchanged_on_golden_anchors() {
    // the full registry through the facade: CSR-backed values must match
    // the pre-CSR golden values (spot anchors from analyzer_golden.rs)
    let all = |g: &Graph| -> Report { Analyzer::new().all_metrics().threads(1).analyze(g) };
    let k5 = all(&builders::complete(5));
    close(k5.scalar("d_avg").unwrap(), 1.0, "K5 d_avg");
    close(k5.scalar("b_max").unwrap(), 0.0, "K5 b_max");
    close(k5.scalar("c_mean").unwrap(), 1.0, "K5 c_mean");
    close(k5.scalar("kcore_max").unwrap(), 4.0, "K5 kcore_max");

    let s5 = all(&builders::star(5));
    close(s5.scalar("d_avg").unwrap(), 5.0 / 3.0, "S5 d_avg");
    close(s5.scalar("b_max").unwrap(), 1.0, "S5 b_max");
    close(s5.scalar("kcore_max").unwrap(), 1.0, "S5 kcore_max");

    let c6 = all(&builders::cycle(6));
    close(c6.scalar("d_avg").unwrap(), 1.8, "C6 d_avg");
    close(c6.scalar("b_max").unwrap(), 0.2, "C6 b_max");
    close(c6.scalar("diameter").unwrap(), 3.0, "C6 diameter");

    let karate = all(&builders::karate_club());
    close(karate.scalar("n").unwrap(), 34.0, "karate n");
    close(
        karate.scalar("kcore_max").unwrap(),
        4.0,
        "karate degeneracy",
    );
    // Brandes' paper / networkx value through the normalized convention
    // (literature constant is truncated at 4 decimals, hence the tol)
    let b_max = karate.scalar("b_max").unwrap();
    let want = 231.0714 * 2.0 / (33.0 * 32.0);
    assert!(
        (b_max - want).abs() < 1e-5,
        "karate b_max {b_max} vs {want}"
    );
}

#[test]
fn giant_component_identical_through_csr_labeling() {
    for g in zoo() {
        let (gcc, map) = traversal::giant_component(&g);
        gcc.check_invariants().unwrap();
        // the mapping must select a maximal component, ascending ids
        assert!(map.windows(2).all(|w| w[0] < w[1]));
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(map, traversal::giant_component_nodes(&csr));
        assert_eq!(
            gcc.node_count() as f64 / g.node_count().max(1) as f64,
            traversal::gcc_fraction(&g).min(1.0)
        );
    }
}

#[test]
fn parallel_equals_serial_through_the_facade() {
    // thread-count byte-identity must survive the CSR port
    let g = builders::karate_club();
    let base = Analyzer::new().all_metrics();
    let serial = base.clone().threads(1).analyze(&g);
    for threads in [2, 4, 0] {
        let parallel = base.clone().threads(threads).analyze(&g);
        assert_eq!(serial, parallel, "threads = {threads}");
        assert_eq!(serial.to_json(), parallel.to_json());
    }
}

// ---------------------------------------------------------------------
// Sampled estimators
// ---------------------------------------------------------------------

#[test]
fn sampled_equals_exact_when_samples_cover_all_nodes() {
    // karate has 34 nodes; the default budget (64) and anything larger
    // must reproduce the exact metrics bit for bit
    let g = builders::karate_club();
    for k in [34, 64, 10_000] {
        let rep = Analyzer::new()
            .metric_names("d_avg,b_max,distance_approx,betweenness_approx")
            .unwrap()
            .sample_sources(k)
            .analyze(&g);
        assert_eq!(
            rep.scalar("distance_approx"),
            rep.scalar("d_avg"),
            "k = {k}"
        );
        assert_eq!(
            rep.scalar("betweenness_approx"),
            rep.scalar("b_max"),
            "k = {k}"
        );
    }
}

#[test]
fn sampled_within_tolerance_of_exact_on_karate() {
    let g = builders::karate_club();
    let rep = Analyzer::new()
        .metric_names("d_avg,b_max,distance_approx,betweenness_approx")
        .unwrap()
        .sample_sources(16)
        .analyze(&g);
    let d_exact = rep.scalar("d_avg").unwrap();
    let d_approx = rep.scalar("distance_approx").unwrap();
    assert!(
        (d_approx - d_exact).abs() / d_exact < 0.1,
        "d̄: exact {d_exact}, sampled {d_approx}"
    );
    let b_exact = rep.scalar("b_max").unwrap();
    let b_approx = rep.scalar("betweenness_approx").unwrap();
    assert!(
        (b_approx - b_exact).abs() / b_exact < 0.35,
        "b_max: exact {b_exact}, sampled {b_approx}"
    );
}

#[test]
fn sampled_deterministic_across_thread_counts() {
    let g = builders::grid(8, 9);
    let analyzer = Analyzer::new()
        .metric_names("distance_approx,betweenness_approx")
        .unwrap()
        .sample_sources(12);
    let serial = analyzer.clone().threads(1).analyze(&g);
    for threads in [2, 4, 0] {
        let parallel = analyzer.clone().threads(threads).analyze(&g);
        assert_eq!(serial, parallel, "threads = {threads}");
    }
    // and across repeated runs (seeded pivot stride, no wall-clock state)
    assert_eq!(serial, analyzer.threads(1).analyze(&g));
}

#[test]
fn sampled_pass_usable_standalone() {
    // library surface: the sampled pass without the facade
    let g = builders::karate_club();
    let csr = CsrGraph::from_graph(&g);
    let s = sampled::sampled_traversal_csr(&csr, 8, 1);
    assert_eq!(s.sources, 8);
    assert_eq!(s.betweenness.len(), 34);
    assert!(s.distances.mean() > 0.0);
    let pivots = sampled::sample_pivots(34, 8);
    assert_eq!(pivots.len(), 8);
}

#[test]
fn sampled_undefined_on_degenerate_graphs() {
    let rep = Analyzer::new()
        .metric_names("distance_approx,betweenness_approx")
        .unwrap()
        .analyze(&builders::path(1));
    assert_eq!(rep.scalar("distance_approx"), None);
    assert_eq!(rep.scalar("betweenness_approx"), None);
}

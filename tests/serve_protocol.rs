//! End-to-end suite for the `dk serve` daemon (see the `dk_serve` crate
//! docs for the protocol reference):
//!
//! * round trips for every op over a real Unix socket;
//! * the epoch contract — mutation verbs atomically invalidate warm
//!   caches and memoized responses (observed via the computed/memo
//!   counters), and recomputed values match an out-of-band replica of
//!   the mutation;
//! * admission control — over-budget requests come back as structured
//!   `over_budget` errors, never an allocation attempt;
//! * the tagged value encoding — `undefined` distinguishable from
//!   `not_finite` on the wire while the legacy report JSON keeps its
//!   untagged `null`s;
//! * byte-identity of response transcripts across `--threads` values;
//! * a malformed-request battery: truncated JSON, unknown verbs, bad
//!   knob values, and oversized requests all produce structured errors
//!   and never kill the daemon.

use dk_json::JsonValue;
use dk_repro::graph::{builders, io as graph_io};
use dk_repro::metrics::{Analyzer, MetricValue, Report};
use dk_serve::{handle_line, Client, Registry, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::Ordering;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dk_serve_{}_{name}", std::process::id()));
    p
}

fn write_karate(tag: &str) -> PathBuf {
    let path = tmp(&format!("{tag}_karate.edges"));
    graph_io::save_edge_list(&builders::karate_club(), &path).expect("write edge list");
    path
}

fn parse(line: &str) -> JsonValue {
    JsonValue::parse(line).unwrap_or_else(|e| panic!("response is not JSON ({e}): {line}"))
}

fn assert_ok(line: &str) -> JsonValue {
    let v = parse(line);
    assert_eq!(
        v.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "expected ok response: {line}"
    );
    v
}

fn assert_error(line: &str, code: &str) {
    let v = parse(line);
    assert_eq!(
        v.get("ok").and_then(JsonValue::as_bool),
        Some(false),
        "expected error response: {line}"
    );
    let got = v
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("error response lacks a code: {line}"));
    assert_eq!(got, code, "wrong error code in: {line}");
}

fn counter_snapshot(reg: &Registry) -> (u64, u64, u64, u64) {
    (
        reg.counters.computed.load(Ordering::Relaxed),
        reg.counters.coalesced.load(Ordering::Relaxed),
        reg.counters.memo_hits.load(Ordering::Relaxed),
        reg.counters.rejected.load(Ordering::Relaxed),
    )
}

#[test]
fn socket_round_trip_all_ops() {
    let karate = write_karate("roundtrip");
    let config = ServerConfig {
        socket: tmp("roundtrip.sock"),
        memory_budget: None,
        threads: 1,
    };
    let server = Server::spawn(&config).expect("bind socket");
    let mut client = Client::connect(&config.socket).expect("connect");
    let req = |c: &mut Client, r: String| c.request(&r).expect("request");

    let load = assert_ok(&req(
        &mut client,
        format!(
            r#"{{"op":"load","graph":"k","path":"{}"}}"#,
            karate.display()
        ),
    ));
    assert_eq!(load.get("n").and_then(JsonValue::as_u64), Some(34));
    assert_eq!(load.get("epoch").and_then(JsonValue::as_u64), Some(1));

    let metric = assert_ok(&req(
        &mut client,
        r#"{"op":"metric","graph":"k"}"#.to_string(),
    ));
    let result = metric.get("result").expect("result fragment");
    let summary = result.get("graph_summary").expect("summary");
    assert_eq!(summary.get("nodes").and_then(JsonValue::as_u64), Some(34));
    let c_mean = result
        .get("values")
        .and_then(|v| v.get("c_mean"))
        .expect("c_mean value");
    assert_eq!(c_mean.get("status").and_then(JsonValue::as_str), Some("ok"));

    let generated = assert_ok(&req(
        &mut client,
        r#"{"op":"generate-into","graph":"g1","from":"k","d":1,"seed":3}"#.to_string(),
    ));
    assert_eq!(generated.get("epoch").and_then(JsonValue::as_u64), Some(1));
    assert!(generated.get("n").and_then(JsonValue::as_u64).unwrap_or(0) > 0);

    let compare = assert_ok(&req(
        &mut client,
        r#"{"op":"compare","a":"k","b":"g1"}"#.to_string(),
    ));
    let d1 = compare
        .get("distances")
        .and_then(|d| d.get("d1"))
        .and_then(JsonValue::as_f64)
        .expect("d1");
    assert!(d1 >= 0.0, "squared distance: {d1}");
    assert!(compare.get("a").and_then(|s| s.get("result")).is_some());

    // unsorted, duplicated checkpoints: the report sorts ascending
    let attack = assert_ok(&req(
        &mut client,
        r#"{"op":"attack","graph":"k","checkpoints":[0.5,0.1,0.1],"samples":8}"#.to_string(),
    ));
    let report = attack.get("report").expect("embedded attack report");
    let fractions: Vec<f64> = report
        .get("checkpoints")
        .and_then(JsonValue::as_array)
        .expect("checkpoints array")
        .iter()
        .map(|c| {
            c.get("fraction")
                .and_then(JsonValue::as_f64)
                .expect("fraction")
        })
        .collect();
    assert_eq!(fractions, vec![0.1, 0.5], "ascending + deduped");

    let rewire = assert_ok(&req(
        &mut client,
        r#"{"op":"rewire","graph":"k","d":1,"seed":7,"attempts":200}"#.to_string(),
    ));
    assert_eq!(rewire.get("epoch").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(rewire.get("m").and_then(JsonValue::as_u64), Some(78));

    let stats = assert_ok(&req(&mut client, r#"{"op":"stats"}"#.to_string()));
    let graphs = stats.get("graphs").expect("graphs listing");
    let names: Vec<&str> = graphs
        .entries()
        .expect("object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(names, ["g1", "k"], "sorted by name");
    assert_eq!(
        graphs
            .get("k")
            .and_then(|g| g.get("epoch"))
            .and_then(JsonValue::as_u64),
        Some(2)
    );

    assert_ok(&req(&mut client, r#"{"op":"shutdown"}"#.to_string()));
    server.stop();
    let _ = std::fs::remove_file(&karate);
}

/// Satellite: mutation invalidates the warm cache/memo — load → metric
/// → rewire → same metric must recompute (proved by the counters), and
/// the recomputed values match an out-of-band replica of the rewire.
#[test]
fn mutation_invalidates_warm_cache_and_memo() {
    let karate = write_karate("epoch");
    let reg = Registry::new(None, 1);
    let load = format!(
        r#"{{"op":"load","graph":"k","path":"{}"}}"#,
        karate.display()
    );
    assert_ok(&handle_line(&reg, &load));
    let metric = r#"{"op":"metric","graph":"k","metrics":"c_mean,r,k_avg"}"#;

    let first = assert_ok(&handle_line(&reg, metric));
    assert_eq!(counter_snapshot(&reg), (1, 0, 0, 0), "first: computed");
    let repeat = assert_ok(&handle_line(&reg, metric));
    assert_eq!(counter_snapshot(&reg), (1, 0, 1, 0), "repeat: memo hit");
    assert_eq!(first.to_string(), repeat.to_string());

    let rewire = r#"{"op":"rewire","graph":"k","d":1,"seed":7}"#;
    assert_ok(&handle_line(&reg, rewire));
    let after = assert_ok(&handle_line(&reg, metric));
    assert_eq!(
        counter_snapshot(&reg),
        (2, 0, 1, 0),
        "after rewire: recomputed, not replayed"
    );
    let epoch = after
        .get("result")
        .and_then(|r| r.get("epoch"))
        .and_then(JsonValue::as_u64);
    assert_eq!(epoch, Some(2), "epoch visibly bumped");

    // replicate the rewire out of band and check the recomputed value
    use dk_repro::core::generate::rewire::{randomize, RewireOptions, SwapBudget};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut g = builders::karate_club();
    let mut rng = StdRng::seed_from_u64(7);
    randomize(
        &mut g,
        1,
        &RewireOptions {
            budget: SwapBudget::AttemptsPerEdge(50.0),
        },
        &mut rng,
    );
    let want = Analyzer::new()
        .metric_names("c_mean,r,k_avg")
        .expect("metric list")
        .analyze(&g);
    let got = after
        .get("result")
        .and_then(|r| r.get("values"))
        .and_then(|v| v.get("c_mean"))
        .and_then(|v| v.get("value"))
        .and_then(JsonValue::as_f64)
        .expect("recomputed c_mean");
    let want_c = want.scalar("c_mean").expect("replica c_mean");
    assert!(
        (got - want_c).abs() < 1e-12,
        "serve recomputed {got}, replica says {want_c}"
    );
    let _ = std::fs::remove_file(&karate);
}

/// Satellite: `Undefined` and non-finite floats are distinguishable on
/// the serve wire, while the legacy report JSON still collapses both to
/// `null` (its historical shape, unchanged).
#[test]
fn tagged_values_distinguish_undefined_from_not_finite() {
    // lambda1 needs >= 2 nodes: a single-node graph is undefined
    let single = tmp("single.edges");
    std::fs::write(&single, "nodes 1\n").expect("write");
    let reg = Registry::new(None, 1);
    assert_ok(&handle_line(
        &reg,
        &format!(
            r#"{{"op":"load","graph":"one","path":"{}"}}"#,
            single.display()
        ),
    ));
    let resp = assert_ok(&handle_line(
        &reg,
        r#"{"op":"metric","graph":"one","metrics":"lambda1","no_gcc":true}"#,
    ));
    let lambda1 = resp
        .get("result")
        .and_then(|r| r.get("values"))
        .and_then(|v| v.get("lambda1"))
        .expect("lambda1 entry");
    assert_eq!(
        lambda1.get("status").and_then(JsonValue::as_str),
        Some("undefined"),
        "tagged undefined on the wire: {resp}"
    );

    // the legacy report path keeps emitting untagged null for both...
    let report = Report {
        graph: Default::default(),
        records: vec![
            record("lambda1", MetricValue::Undefined),
            record("r", MetricValue::Scalar(f64::NAN)),
        ],
    };
    let legacy = report.to_json();
    assert!(
        legacy.contains("\"lambda1\":null") && legacy.contains("\"r\":null"),
        "report JSON unchanged: {legacy}"
    );
    // ...which is exactly the ambiguity the tagged encoding resolves
    use dk_serve::protocol::tagged_value;
    assert_eq!(
        tagged_value(&MetricValue::Scalar(f64::NAN)),
        r#"{"status":"not_finite","repr":"nan"}"#
    );
    assert_eq!(
        tagged_value(&MetricValue::Undefined),
        r#"{"status":"undefined"}"#
    );
    let _ = std::fs::remove_file(&single);
}

fn record(name: &str, value: MetricValue) -> dk_repro::metrics::report::MetricRecord {
    dk_repro::metrics::report::MetricRecord {
        metric: dk_repro::metrics::AnyMetric::get(name).expect("registered"),
        value,
    }
}

/// Satellite: admission control — requests that cannot fit the
/// effective budget are rejected with a structured error before any
/// allocation, and the effective budget is min(server, request).
#[test]
fn over_budget_requests_are_rejected_structurally() {
    let karate = write_karate("budget");
    // an open server: the request's own budget triggers rejection
    let reg = Registry::new(None, 1);
    assert_ok(&handle_line(
        &reg,
        &format!(
            r#"{{"op":"load","graph":"k","path":"{}"}}"#,
            karate.display()
        ),
    ));
    let tiny = r#"{"op":"metric","graph":"k","memory_budget":16}"#;
    assert_error(&handle_line(&reg, tiny), "over_budget");
    assert_eq!(reg.counters.rejected.load(Ordering::Relaxed), 1);
    // same request without the budget knob succeeds
    assert_ok(&handle_line(&reg, r#"{"op":"metric","graph":"k"}"#));

    // a server-wide budget rejects even budget-less requests
    let strict = Registry::new(Some(16), 1);
    assert_ok(&handle_line(
        &strict,
        &format!(
            r#"{{"op":"load","graph":"k","path":"{}"}}"#,
            karate.display()
        ),
    ));
    assert_error(
        &handle_line(&strict, r#"{"op":"metric","graph":"k"}"#),
        "over_budget",
    );
    // mutation verbs are priced through the same gate: neither may
    // clone the graph (rewire) or materialize a census (generate-into)
    // once the budget cannot fit the footprint
    assert_error(
        &handle_line(&strict, r#"{"op":"rewire","graph":"k","d":1,"seed":7}"#),
        "over_budget",
    );
    assert_error(
        &handle_line(
            &strict,
            r#"{"op":"generate-into","graph":"x","from":"k","d":1,"seed":7}"#,
        ),
        "over_budget",
    );
    // the rejected rewire mutated nothing: the entry is still epoch 1
    let stats = assert_ok(&handle_line(&strict, r#"{"op":"stats"}"#));
    assert_eq!(
        stats
            .get("graphs")
            .and_then(|g| g.get("k"))
            .and_then(|g| g.get("epoch"))
            .and_then(JsonValue::as_u64),
        Some(1),
        "rejected mutation must not bump the epoch"
    );
    // a generous budget is admitted and forwarded to the executor
    let roomy = Registry::new(Some(1 << 30), 1);
    assert_ok(&handle_line(
        &roomy,
        &format!(
            r#"{{"op":"load","graph":"k","path":"{}"}}"#,
            karate.display()
        ),
    ));
    assert_ok(&handle_line(&roomy, r#"{"op":"metric","graph":"k"}"#));
    let _ = std::fs::remove_file(&karate);
}

/// Tentpole contract: the same request stream + seeds produce
/// byte-identical response transcripts regardless of the server's
/// thread count.
#[test]
fn transcripts_are_byte_identical_across_thread_counts() {
    let karate = write_karate("threads");
    let run = |threads: usize| -> Vec<String> {
        let config = ServerConfig {
            socket: tmp(&format!("threads{threads}.sock")),
            memory_budget: None,
            threads,
        };
        let server = Server::spawn(&config).expect("bind");
        let mut client = Client::connect(&config.socket).expect("connect");
        let stream = [
            format!(r#"{{"op":"load","graph":"k","path":"{}"}}"#, karate.display()),
            r#"{"op":"metric","graph":"k","metrics":"default","samples":8}"#.to_string(),
            r#"{"op":"generate-into","graph":"g","from":"k","d":1,"seed":11}"#.to_string(),
            r#"{"op":"compare","a":"k","b":"g","metrics":"cheap"}"#.to_string(),
            r#"{"op":"attack","graph":"k","strategy":"degree","checkpoints":[0.1,0.5],"samples":8}"#
                .to_string(),
            r#"{"op":"rewire","graph":"k","d":1,"seed":7,"attempts":100}"#.to_string(),
            r#"{"op":"metric","graph":"k","metrics":"cheap"}"#.to_string(),
        ];
        let transcript = stream
            .iter()
            .map(|r| client.request(r).expect("request"))
            .collect();
        server.stop();
        transcript
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, parallel, "byte-identical transcripts");
    let _ = std::fs::remove_file(&karate);
}

/// Satellite: malformed-request battery — structured errors for every
/// abuse, and the registry keeps serving afterwards.
#[test]
fn malformed_requests_get_structured_errors() {
    let karate = write_karate("malformed");
    let reg = Registry::new(None, 1);
    assert_ok(&handle_line(
        &reg,
        &format!(
            r#"{{"op":"load","graph":"k","path":"{}"}}"#,
            karate.display()
        ),
    ));
    let cases: &[(&str, &str)] = &[
        // truncated / invalid JSON (a slice of the jsonchk corpus)
        ("{", "parse"),
        (r#"{"op": }"#, "parse"),
        (r#"{"op":"stats"} trailing"#, "parse"),
        (r#"{"n": 1.2.3}"#, "parse"),
        ("\"open", "parse"),
        // structurally valid JSON, protocol-invalid requests
        ("[1,2]", "bad_request"),
        ("42", "bad_request"),
        (r#"{"no_op_here":1}"#, "bad_request"),
        (r#"{"op":"zap"}"#, "unknown_op"),
        (r#"{"op":"metric"}"#, "bad_request"),
        (r#"{"op":"metric","graph":"missing"}"#, "unknown_graph"),
        (
            r#"{"op":"metric","graph":"k","metrics":"bogus"}"#,
            "unknown_metric",
        ),
        (r#"{"op":"metric","graph":"k","samples":-3}"#, "bad_knob"),
        (r#"{"op":"metric","graph":"k","samples":1.5}"#, "bad_knob"),
        (r#"{"op":"metric","graph":"k","no_gcc":"yes"}"#, "bad_knob"),
        (
            r#"{"op":"attack","graph":"k","strategy":"bogus"}"#,
            "bad_knob",
        ),
        (
            r#"{"op":"attack","graph":"k","checkpoints":[2.0]}"#,
            "bad_knob",
        ),
        (
            r#"{"op":"attack","graph":"k","checkpoints":"0.5"}"#,
            "bad_knob",
        ),
        (r#"{"op":"rewire","graph":"k","d":7}"#, "bad_knob"),
        (r#"{"op":"rewire","graph":"k"}"#, "bad_request"),
        (
            r#"{"op":"generate-into","graph":"x","from":"k","d":1,"algo":"bogus"}"#,
            "bad_knob",
        ),
        (
            r#"{"op":"generate-into","graph":"x","from":"k","d":3,"algo":"matching"}"#,
            "bad_knob",
        ),
        (
            r#"{"op":"load","graph":"x","path":"/nonexistent/nope.edges"}"#,
            "io",
        ),
    ];
    for (request, code) in cases {
        assert_error(&handle_line(&reg, request), code);
    }
    // the daemon state survived the whole battery
    assert_ok(&handle_line(&reg, r#"{"op":"metric","graph":"k"}"#));
    let _ = std::fs::remove_file(&karate);
}

/// Binding discipline: a second daemon must not steal a live daemon's
/// socket, a stale socket file (dead daemon) is replaced, and a
/// non-socket file at the path is never deleted.
#[test]
fn spawn_refuses_to_steal_a_live_daemons_socket() {
    let config = ServerConfig {
        socket: tmp("livesock.sock"),
        memory_budget: None,
        threads: 1,
    };
    let server = Server::spawn(&config).expect("bind");
    let err = match Server::spawn(&config) {
        Err(e) => e,
        Ok(_) => panic!("second daemon must refuse to bind"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
    // the refusal left the first daemon fully operational
    let mut client = Client::connect(&config.socket).expect("still alive");
    assert_ok(&client.request(r#"{"op":"stats"}"#).expect("stats"));
    server.stop();

    // a stale socket file nobody accepts on is replaced
    {
        let _dead = std::os::unix::net::UnixListener::bind(&config.socket).expect("bind stale");
        // listener dropped here; the socket file stays behind
    }
    assert!(config.socket.exists(), "stale socket file left on disk");
    let revived = Server::spawn(&config).expect("stale socket replaced");
    let mut client = Client::connect(&config.socket).expect("connect");
    assert_ok(&client.request(r#"{"op":"stats"}"#).expect("stats"));
    revived.stop();

    // an unrelated regular file at the path survives untouched
    let plain = tmp("livesock_plain");
    std::fs::write(&plain, "precious").expect("write");
    let clobber = ServerConfig {
        socket: plain.clone(),
        memory_budget: None,
        threads: 1,
    };
    assert!(
        Server::spawn(&clobber).is_err(),
        "refuses to replace a non-socket file"
    );
    assert_eq!(
        std::fs::read_to_string(&plain).expect("still there"),
        "precious"
    );
    let _ = std::fs::remove_file(&plain);
}

/// Oversized requests: structured error over the real socket, then the
/// connection is closed; the daemon itself keeps serving.
#[test]
fn oversized_requests_close_the_connection_not_the_daemon() {
    let config = ServerConfig {
        socket: tmp("oversized.sock"),
        memory_budget: None,
        threads: 1,
    };
    let server = Server::spawn(&config).expect("bind");
    let mut client = Client::connect(&config.socket).expect("connect");
    // a single line larger than the cap, sent raw (Client::request
    // refuses to send it, which is itself part of the contract)
    let huge = format!(
        r#"{{"op":"stats","pad":"{}"}}"#,
        "x".repeat(dk_serve::MAX_REQUEST_BYTES)
    );
    assert!(client.request(&huge).is_err(), "client refuses oversized");
    {
        use std::io::{BufRead, BufReader, Write};
        let mut raw = std::os::unix::net::UnixStream::connect(&config.socket).expect("connect");
        raw.write_all(huge.as_bytes()).expect("send");
        raw.write_all(b"\n").expect("send");
        let mut line = String::new();
        BufReader::new(&raw).read_line(&mut line).expect("read");
        assert_error(line.trim_end(), "oversized");
    }
    // a fresh connection still works: the daemon survived
    let mut again = Client::connect(&config.socket).expect("reconnect");
    assert_ok(&again.request(r#"{"op":"stats"}"#).expect("stats"));
    server.stop();
}

//! The paper's §3 convergence claim implies dK-graphs eventually capture
//! *any* metric, including ones not on the §2 list. Check two such
//! metrics — k-core decomposition and rich-club connectivity — on
//! 3K-random graphs: neither is explicitly constrained by wedge/triangle
//! histograms, yet both should be (near-)reproduced at d = 3 while
//! visibly broken at d = 1.

use dk_repro::core::generate::rewire::{randomize, RewireOptions};
use dk_repro::graph::builders;
use dk_repro::metrics::{kcore, richclub};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn coreness_histogram(core: &[usize]) -> Vec<usize> {
    let kmax = core.iter().copied().max().unwrap_or(0);
    let mut h = vec![0usize; kmax + 1];
    for &c in core {
        h[c] += 1;
    }
    h
}

#[test]
fn three_k_random_preserves_core_structure_on_karate() {
    let original = builders::karate_club();
    let core0 = coreness_histogram(&kcore::coreness(&original));
    let mut rng = StdRng::seed_from_u64(1);

    // d = 3: the coreness histogram should match in a large fraction of
    // ensemble members. Wedge/triangle histograms do not pin coreness
    // exactly — the per-seed match rate hovers around 45% — so the
    // threshold is set at 30% (the signal is the *contrast* with d = 1,
    // whose match rate is ~5%), leaving margin for trajectory shifts
    // when the swap engine evolves.
    let mut exact_matches = 0;
    const RUNS: usize = 20;
    for _ in 0..RUNS {
        let mut g = original.clone();
        randomize(&mut g, 3, &RewireOptions::default(), &mut rng);
        if coreness_histogram(&kcore::coreness(&g)) == core0 {
            exact_matches += 1;
        }
    }
    assert!(
        exact_matches >= RUNS * 3 / 10,
        "3K-random must often pin the coreness histogram ({exact_matches}/{RUNS})"
    );

    // d = 1: the coreness *histogram* drifts in most runs (the 4-core
    // itself is largely forced by karate's dense degree sequence, but
    // its population is not)
    let mut drifted = 0;
    for _ in 0..RUNS {
        let mut g = original.clone();
        randomize(&mut g, 1, &RewireOptions::default(), &mut rng);
        if coreness_histogram(&kcore::coreness(&g)) != core0 {
            drifted += 1;
        }
    }
    assert!(
        drifted >= RUNS * 7 / 10,
        "1K-random should usually shift the core populations ({drifted}/{RUNS})"
    );
}

#[test]
fn rich_club_tracks_d() {
    // mean absolute φ(k) error vs original, averaged over thresholds —
    // must not increase with d, and d = 3 should beat d = 1 clearly.
    let original = builders::karate_club();
    let rc0: std::collections::BTreeMap<usize, f64> =
        richclub::rich_club(&original).into_iter().collect();
    let err_at = |d: u8, seed: u64| -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc = 0.0;
        const RUNS: usize = 8;
        for _ in 0..RUNS {
            let mut g = original.clone();
            randomize(&mut g, d, &RewireOptions::default(), &mut rng);
            let rc: std::collections::BTreeMap<usize, f64> =
                richclub::rich_club(&g).into_iter().collect();
            let mut e = 0.0;
            let mut cnt = 0;
            for (k, phi) in &rc0 {
                if let Some(p) = rc.get(k) {
                    e += (phi - p).abs();
                    cnt += 1;
                }
            }
            acc += e / cnt.max(1) as f64;
        }
        acc / RUNS as f64
    };
    let e1 = err_at(1, 10);
    let e2 = err_at(2, 20);
    let e3 = err_at(3, 30);
    assert!(
        e3 < e1 * 0.6,
        "rich-club error must shrink with d: e1 = {e1:.4}, e2 = {e2:.4}, e3 = {e3:.4}"
    );
    assert!(
        e3 <= e2 + 1e-9,
        "d = 3 must not be worse than d = 2: e2 = {e2:.4}, e3 = {e3:.4}"
    );
}

//! Cross-crate property tests on randomly generated graphs.

use dk_repro::core::dist::{Dist1K, Dist2K, Dist3K};
use dk_repro::core::generate::rewire::{randomize, RewireOptions, SwapBudget};
use dk_repro::core::io;
use dk_repro::graph::csr::CsrGraph;
use dk_repro::graph::Graph;
use proptest::prelude::*;

/// Strategy: a random simple graph with up to `n` nodes.
fn arb_graph(n: u32, max_edges: usize) -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0..n, 0..n), 0..max_edges)
        .prop_map(move |edges| Graph::from_edges_dedup(n as usize, edges).expect("in range"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Extraction → derivation equals direct extraction at every level.
    #[test]
    fn inclusion_chain_holds(g in arb_graph(24, 80)) {
        let d3 = Dist3K::from_graph(&g);
        let d2 = Dist2K::from_graph(&g);
        let d1 = Dist1K::from_graph(&g);
        // 3K → 2K is exact except the (1,1) blind spot
        let via = d3.to_2k();
        for (&key, &m) in &d2.counts {
            if key == (1, 1) { continue; }
            prop_assert_eq!(via.m(key.0, key.1), m, "class {:?}", key);
        }
        // 2K → 1K loses only isolated nodes
        let d1_via = d2.to_1k().unwrap();
        for k in 1..d1.counts.len() {
            prop_assert_eq!(
                d1_via.counts.get(k).copied().unwrap_or(0),
                d1.counts[k],
                "degree {}", k
            );
        }
    }

    /// dK text formats round-trip for arbitrary graphs.
    #[test]
    fn dist_files_roundtrip(g in arb_graph(20, 60)) {
        let d1 = Dist1K::from_graph(&g);
        let mut buf = Vec::new();
        io::write_1k(&d1, &mut buf).unwrap();
        prop_assert_eq!(io::read_1k(buf.as_slice()).unwrap(), d1);

        let d2 = Dist2K::from_graph(&g);
        let mut buf = Vec::new();
        io::write_2k(&d2, &mut buf).unwrap();
        prop_assert_eq!(io::read_2k(buf.as_slice()).unwrap(), d2);

        let d3 = Dist3K::from_graph(&g);
        let mut buf = Vec::new();
        io::write_3k(&d3, &mut buf).unwrap();
        prop_assert_eq!(io::read_3k(buf.as_slice()).unwrap(), d3);
    }

    /// Rewiring preserves exactly what it promises, on arbitrary graphs.
    #[test]
    fn rewiring_invariants(g in arb_graph(20, 60), d in 0u8..=3, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut h = g.clone();
        let opts = RewireOptions { budget: SwapBudget::Attempts(300) };
        randomize(&mut h, d, &opts, &mut rng);
        h.check_invariants().unwrap();
        prop_assert_eq!(h.node_count(), g.node_count());
        prop_assert_eq!(h.edge_count(), g.edge_count());
        if d >= 1 {
            prop_assert_eq!(h.degrees(), g.degrees());
        }
        if d >= 2 {
            prop_assert_eq!(Dist2K::from_graph(&h), Dist2K::from_graph(&g));
        }
        if d >= 3 {
            prop_assert_eq!(Dist3K::from_graph(&h), Dist3K::from_graph(&g));
        }
    }

    /// Graph edge-list text I/O round-trips arbitrary graphs.
    #[test]
    fn edge_list_roundtrip(g in arb_graph(30, 100)) {
        let mut buf = Vec::new();
        dk_repro::graph::io::write_edge_list(&g, &mut buf).unwrap();
        let back = dk_repro::graph::io::read_edge_list(buf.as_slice()).unwrap();
        prop_assert_eq!(back, g);
    }

    /// S2 computed three ways agrees: metric formula, 3K distribution,
    /// and brute-force wedge enumeration.
    #[test]
    fn s2_consistency(g in arb_graph(16, 50)) {
        let fast = dk_repro::metrics::likelihood::likelihood_s2(&g);
        let via_3k = Dist3K::from_graph(&g).s2();
        prop_assert!((fast - via_3k).abs() < 1e-9, "fast {} vs 3K {}", fast, via_3k);
    }

    /// Triangle counts agree between the metric suite and the 3K census.
    #[test]
    fn triangle_consistency(g in arb_graph(16, 50)) {
        let a = dk_repro::metrics::clustering::triangle_count(&g) as u64;
        let b = Dist3K::from_graph(&g).triangle_total();
        prop_assert_eq!(a, b);
    }

    /// Sharded streaming analysis is bit-identical to the in-memory
    /// route across shard counts {1, 2, 7, n} and thread counts, for
    /// every metric whose pass rides the shard executor (exact distance
    /// family, betweenness family, the sampled estimators, the HyperANF
    /// sketches — the set is derived from the registry's dependency
    /// metadata via `Dep::rides_shard_executor`, so a future estimator
    /// metric is swept automatically instead of silently skipped).
    #[test]
    fn streamed_analysis_equals_in_memory(g in arb_graph(24, 80), threads in 1usize..4) {
        use dk_repro::metrics::metric::AnyMetric;
        use dk_repro::metrics::stream::ExecMode;
        use dk_repro::metrics::Analyzer;
        let names = AnyMetric::all()
            .filter(|m| m.deps().iter().any(|d| d.rides_shard_executor()))
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join(",");
        let n = g.node_count();
        for shards in [1, 2, 7, n.max(1)] {
            let oracle = Analyzer::new()
                .metric_names(&names)
                .unwrap()
                .exec_mode(ExecMode::InMemory)
                .shards(shards)
                .threads(1)
                .analyze(&g);
            let streamed = Analyzer::new()
                .metric_names(&names)
                .unwrap()
                .exec_mode(ExecMode::Streamed)
                .shards(shards)
                .threads(threads)
                .analyze(&g);
            prop_assert_eq!(&oracle, &streamed, "shards {}, threads {}", shards, threads);
            prop_assert_eq!(oracle.to_json(), streamed.to_json());
        }
    }

    /// The word-packed SWAR union kernel (8 registers per `u64`, PR 10)
    /// equals the scalar per-byte `if d < s { d = s }` loop on
    /// arbitrary register files — including lengths that exercise both
    /// the 8-byte fast path and the scalar remainder, and bytes on both
    /// sides of the 0x80 sign-bit boundary the SWAR compare splits on.
    #[test]
    fn swar_union_matches_scalar_oracle(
        pairs in proptest::collection::vec((0u8..=255, 0u8..=255), 0..200)
    ) {
        let (mut dst, src): (Vec<u8>, Vec<u8>) = pairs.into_iter().unzip();
        let mut oracle = dst.clone();
        for (d, s) in oracle.iter_mut().zip(&src) {
            if *d < *s {
                *d = *s;
            }
        }
        dk_repro::metrics::sketch::union_registers(&mut dst, &src);
        prop_assert_eq!(dst, oracle);
    }

    /// Sketch union-merge is a semilattice: associative, commutative,
    /// and idempotent — the algebra HyperANF's correctness rests on
    /// (register files may be unioned in any grouping or order without
    /// changing a bit).
    #[test]
    fn sketch_union_is_a_semilattice(
        xs in proptest::collection::vec(0u64..1000, 0..40),
        ys in proptest::collection::vec(0u64..1000, 0..40),
        zs in proptest::collection::vec(0u64..1000, 0..40),
        bits in 4u32..=8,
    ) {
        use dk_repro::metrics::sketch::HllSketch;
        let of = |items: &[u64]| {
            let mut s = HllSketch::new(bits);
            for &v in items {
                s.insert(v);
            }
            s
        };
        let (a, b, c) = (of(&xs), of(&ys), of(&zs));
        // associative: (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut left = a.clone();
        left.union(&b);
        left.union(&c);
        let mut right_bc = b.clone();
        right_bc.union(&c);
        let mut right = a.clone();
        right.union(&right_bc);
        prop_assert_eq!(&left, &right);
        // commutative: a ∪ b == b ∪ a
        let mut ab = a.clone();
        ab.union(&b);
        let mut ba = b.clone();
        ba.union(&a);
        prop_assert_eq!(&ab, &ba);
        // idempotent: a ∪ a == a
        let mut aa = a.clone();
        aa.union(&a);
        prop_assert_eq!(&aa, &a);
        // NOTE: estimate() monotonicity under union is deliberately NOT
        // asserted — the registers only grow, but the small-range
        // (linear counting) correction can dip at its hand-off point,
        // which is exactly why HyperAnf clamps N(t) monotone. The
        // estimate must merely stay finite and positive here.
        prop_assert!(ab.estimate().is_finite() && ab.estimate() >= 0.0);
    }

    /// HyperANF results are bit-identical across thread counts and
    /// shard counts {1, 2, 7, n}, on both the in-memory and the
    /// streamed route — the same invariant family as
    /// `streamed_analysis_equals_in_memory`, at the library layer.
    #[test]
    fn hyperanf_bit_identical_across_shards_and_threads(
        g in arb_graph(24, 80),
        threads in 1usize..4,
        bits in 4u32..=7,
    ) {
        use dk_repro::metrics::sketch::{hyper_anf_sharded, hyper_anf_streamed};
        let csr = CsrGraph::from_graph(&g);
        let n = g.node_count();
        let oracle = hyper_anf_sharded(&csr, bits, 64, 1, 1);
        for shards in [1, 2, 7, n.max(1)] {
            prop_assert_eq!(
                &hyper_anf_sharded(&csr, bits, 64, shards, threads),
                &oracle,
                "in-memory, shards {}", shards
            );
            prop_assert_eq!(
                &hyper_anf_streamed(&csr, bits, 64, shards, threads),
                &oracle,
                "streamed, shards {}", shards
            );
        }
    }

    /// The CSR snapshot round-trips any graph: node/edge counts, degrees,
    /// and every sorted neighbor slice are identical.
    #[test]
    fn csr_snapshot_round_trips(g in arb_graph(32, 120)) {
        let csr = CsrGraph::from_graph(&g);
        prop_assert_eq!(csr.node_count(), g.node_count());
        prop_assert_eq!(csr.edge_count(), g.edge_count());
        prop_assert_eq!(csr.degrees(), g.degrees());
        prop_assert_eq!(csr.max_degree(), g.max_degree());
        for u in g.nodes() {
            prop_assert_eq!(csr.neighbors(u), g.neighbors(u), "node {}", u);
            // neighbor slices stay strictly sorted (the membership-test
            // invariant triangle merges rely on)
            prop_assert!(csr.neighbors(u).windows(2).all(|w| w[0] < w[1]));
        }
    }
}

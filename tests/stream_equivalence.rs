//! Streaming equivalence suite: the sharded **streaming** route of every
//! traversal-shaped metric must be **bit-identical** to the retained
//! in-memory route (the equivalence oracle) at equal shard counts, for
//! every thread count — and the default analyzer output must be
//! byte-identical whether it streams or not.
//!
//! The sampled (Brandes–Pich) estimators ride the same shard executor,
//! so their edge cases live here too: disconnected, empty, and `n < K`
//! graphs; `K ≥ n` equal to exact bit for bit; estimator denominators
//! never zero.

use dk_repro::graph::builders;
use dk_repro::graph::csr::CsrGraph;
use dk_repro::graph::Graph;
use dk_repro::metrics::stream::{self, ExecMode};
use dk_repro::metrics::{betweenness, distance::DistanceDistribution, sampled, Analyzer};

/// The graphs every equivalence check runs over: golden anchors plus a
/// disconnected graph (unreachable-pair accounting) and one with
/// isolated nodes (GCC extraction path).
fn zoo() -> Vec<Graph> {
    let mut with_isolated = builders::karate_club();
    with_isolated.add_node();
    with_isolated.add_node();
    vec![
        builders::complete(5),
        builders::star(5),
        builders::cycle(6),
        builders::karate_club(),
        builders::grid(5, 7),
        Graph::from_edges(7, [(0, 1), (2, 3), (3, 4), (4, 2), (5, 6)]).unwrap(),
        with_isolated,
    ]
}

/// Comma-separated names of every registry metric whose pass rides the
/// shard executor (exact, sampled, or sketch) — derived from the
/// registry's dependency metadata via `Dep::rides_shard_executor`, so a
/// future estimator metric is covered automatically instead of silently
/// skipping the equivalence sweep.
fn traversal_metric_names() -> String {
    use dk_repro::metrics::metric::AnyMetric;
    let names: Vec<&str> = AnyMetric::all()
        .filter(|m| m.deps().iter().any(|d| d.rides_shard_executor()))
        .map(|m| m.name())
        .collect();
    assert!(
        names.len() >= 11,
        "registry lost traversal metrics: {names:?}"
    );
    assert!(
        names.contains(&"avg_distance_sketch"),
        "dep metadata must route the sketch metrics into the sweep: {names:?}"
    );
    names.join(",")
}

// ---------------------------------------------------------------------
// Library-level bit-identity: streamed vs in-memory oracle
// ---------------------------------------------------------------------

#[test]
fn fused_streamed_bit_identical_to_oracle_across_shards_and_threads() {
    for g in zoo() {
        let csr = CsrGraph::from_graph(&g);
        let n = g.node_count();
        for shards in [1, 2, 7, n] {
            let oracle = betweenness::betweenness_and_distances_sharded(&csr, shards, 1);
            for threads in [1, 3] {
                let s = betweenness::betweenness_and_distances_streamed(&csr, shards, threads);
                // Vec<f64> equality is exact — any rounding drift fails
                assert_eq!(s.betweenness, oracle.betweenness, "shards = {shards}");
                assert_eq!(s.distances, oracle.distances);
                assert_eq!(s.max_depth, oracle.max_depth);
            }
        }
    }
}

#[test]
fn distance_streamed_identical_for_every_shard_count() {
    // the histogram reducer is integer, so the streamed result matches
    // the default route at ANY shard count, not just equal ones
    for g in zoo() {
        let csr = CsrGraph::from_graph(&g);
        let want = DistanceDistribution::from_csr_with_threads(&csr, 1);
        for shards in [1, 2, 7, g.node_count()] {
            for threads in [1, 3] {
                assert_eq!(
                    DistanceDistribution::from_csr_streamed(&csr, shards, threads),
                    want,
                    "shards = {shards}, threads = {threads}"
                );
            }
        }
    }
}

#[test]
fn sampled_streamed_bit_identical_to_oracle() {
    for g in zoo() {
        let csr = CsrGraph::from_graph(&g);
        let n = g.node_count();
        for k in [1, 8, n, n + 10] {
            for shards in [1, 2, 7, n] {
                let oracle = sampled::sampled_traversal_sharded(&csr, k, shards, 1);
                for threads in [1, 3] {
                    assert_eq!(
                        sampled::sampled_traversal_streamed(&csr, k, shards, threads),
                        oracle,
                        "k = {k}, shards = {shards}, threads = {threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn eccentricity_reducer_agrees_with_histogram() {
    for g in zoo() {
        let csr = CsrGraph::from_graph(&g);
        let fused = betweenness::betweenness_and_distances_streamed(&csr, 7, 2);
        assert_eq!(fused.max_depth as usize, fused.distances.diameter());
        let s = sampled::sampled_traversal_streamed(&csr, 8, 3, 2);
        assert_eq!(s.max_depth as usize, s.distances.diameter());
    }
}

// ---------------------------------------------------------------------
// Analyzer-level equivalence (the facade route selection)
// ---------------------------------------------------------------------

#[test]
fn analyzer_streamed_report_identical_to_in_memory_oracle() {
    let names = traversal_metric_names();
    for g in zoo() {
        let n = g.node_count();
        for shards in [1, 2, 7, n.max(1)] {
            let oracle = Analyzer::new()
                .metric_names(&names)
                .unwrap()
                .exec_mode(ExecMode::InMemory)
                .shards(shards)
                .threads(1)
                .analyze(&g);
            for threads in [1, 4] {
                let streamed = Analyzer::new()
                    .metric_names(&names)
                    .unwrap()
                    .exec_mode(ExecMode::Streamed)
                    .shards(shards)
                    .threads(threads)
                    .analyze(&g);
                assert_eq!(oracle, streamed, "shards = {shards}, threads = {threads}");
                assert_eq!(oracle.to_json(), streamed.to_json());
            }
        }
    }
}

#[test]
fn analyzer_relabel_report_identical_across_routes_and_threads() {
    // the locality relabeling (PR 10) must be invisible in the report:
    // relabel-on vs relabel-off, on both routes, at every thread count,
    // over every shard-executor metric the registry knows about
    let names = traversal_metric_names();
    for g in zoo() {
        for exec in [ExecMode::InMemory, ExecMode::Streamed] {
            let oracle = Analyzer::new()
                .metric_names(&names)
                .unwrap()
                .exec_mode(exec)
                .threads(1)
                .analyze(&g);
            for threads in [1, 4] {
                let relabeled = Analyzer::new()
                    .metric_names(&names)
                    .unwrap()
                    .exec_mode(exec)
                    .relabel(true)
                    .threads(threads)
                    .analyze(&g);
                assert_eq!(oracle, relabeled, "exec = {exec:?}, threads = {threads}");
                assert_eq!(oracle.to_json(), relabeled.to_json());
            }
        }
    }
}

#[test]
fn analyzer_default_route_unchanged_by_streaming_optin() {
    // shards at the default count + a generous memory budget must not
    // change a byte of the default (auto, in-memory at this size) report
    let g = builders::karate_club();
    let base = Analyzer::new().all_metrics().analyze(&g);
    let streamed = Analyzer::new()
        .all_metrics()
        .shards(stream::DEFAULT_SHARDS)
        .memory_budget(1 << 30)
        .analyze(&g);
    assert_eq!(base, streamed);
    assert_eq!(base.to_json(), streamed.to_json());
}

#[test]
fn analyzer_memory_budget_caps_workers_without_changing_results() {
    let g = builders::grid(6, 8);
    let names = traversal_metric_names();
    let roomy = Analyzer::new()
        .metric_names(&names)
        .unwrap()
        .threads(4)
        .analyze(&g);
    // a one-worker budget: same results, just less parallelism
    let starved = Analyzer::new()
        .metric_names(&names)
        .unwrap()
        .threads(4)
        .memory_budget(1)
        .analyze(&g);
    assert_eq!(roomy, starved);
}

#[test]
fn cache_plan_is_visible_and_auto_threshold_applies() {
    use dk_repro::metrics::{AnalysisCache, AnalyzeOptions};
    let g = builders::karate_club();
    let small = AnalysisCache::build(&g, &[], &AnalyzeOptions::default());
    assert!(!small.exec_plan().streamed, "34 nodes stay in memory");
    let opted_in = AnalysisCache::build(
        &g,
        &[],
        &AnalyzeOptions {
            shards: Some(7),
            ..Default::default()
        },
    );
    assert!(opted_in.exec_plan().streamed);
    assert_eq!(opted_in.exec_plan().shards, 7);
}

// ---------------------------------------------------------------------
// Sampled estimator edge cases (disconnected / empty / n < K)
// ---------------------------------------------------------------------

#[test]
fn sampled_metrics_undefined_on_empty_and_degenerate_graphs() {
    let analyzer = Analyzer::new()
        .metric_names("distance_approx,betweenness_approx")
        .unwrap();
    let empty = analyzer.analyze(&Graph::new());
    assert_eq!(empty.scalar("distance_approx"), None);
    assert_eq!(empty.scalar("betweenness_approx"), None);
    let single = analyzer.analyze(&builders::path(1));
    assert_eq!(single.scalar("distance_approx"), None);
    assert_eq!(single.scalar("betweenness_approx"), None);
    // two nodes: distance defined, betweenness undefined (n < 3)
    let pair = analyzer.analyze(&builders::path(2));
    assert_eq!(pair.scalar("distance_approx"), Some(1.0));
    assert_eq!(pair.scalar("betweenness_approx"), None);
}

#[test]
fn sampled_equals_exact_bitwise_when_k_covers_n() {
    // n < K for every zoo graph at K = 10_000: sampled twins must equal
    // their exact metrics bit for bit, on both routes
    for g in zoo() {
        for shards in [None, Some(7)] {
            let mut analyzer = Analyzer::new()
                .metric_names("d_avg,d_std,b_max,distance_approx,betweenness_approx")
                .unwrap()
                .sample_sources(10_000);
            if let Some(s) = shards {
                analyzer = analyzer.shards(s);
            }
            let rep = analyzer.analyze(&g);
            assert_eq!(
                rep.scalar("distance_approx"),
                rep.scalar("d_avg"),
                "shards = {shards:?}"
            );
            assert_eq!(rep.scalar("betweenness_approx"), rep.scalar("b_max"));
        }
    }
}

#[test]
fn sampled_estimators_finite_on_disconnected_graphs() {
    // heavily disconnected graph straight through the streamed pass:
    // no NaN, no division by zero, fractions in range
    let g = Graph::from_edges(9, [(0, 1), (2, 3), (3, 4), (5, 6)]).unwrap();
    let csr = CsrGraph::from_graph(&g);
    for k in [1, 3, 9, 50] {
        let s = sampled::sampled_traversal_streamed(&csr, k, 4, 2);
        let f = s.unreachable_fraction();
        assert!(f.is_finite() && (0.0..=1.0).contains(&f), "k = {k}: {f}");
        assert!(s.pdf_estimate().iter().all(|p| p.is_finite() && *p >= 0.0));
        assert!(s.distances.mean().is_finite());
        assert!(s.betweenness.iter().all(|b| b.is_finite()));
    }
    // all-isolated graph: every pair unreachable, mean distance 0
    let isolated = Graph::with_nodes(4);
    let s = sampled::sampled_traversal(&isolated, 2, 1);
    assert_eq!(s.distances.mean(), 0.0);
    assert!(s.unreachable_fraction() > 0.0);
    assert!(s.pdf_estimate().iter().all(|p| p.is_finite()));
}

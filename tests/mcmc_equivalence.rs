//! Equivalence harness for the `dk-mcmc` engine (PR contract):
//!
//! * **Delta equivalence** — `Delta2K`/`Delta3K` accumulated over a
//!   random accepted-move sequence equal recompute-from-scratch on the
//!   final graph, across seeds and graph shapes;
//! * **Dry-run fidelity** — the non-mutating validator's verdict always
//!   matches the mutating path, and a refused apply leaves the graph
//!   byte-identical;
//! * **MH balance** — forward and reverse proposal probabilities are
//!   symmetric for plain double-edge swaps, so the proposal ratio drops
//!   out of the acceptance rule;
//! * **Determinism** — fixed-seed chain output is bit-identical across
//!   thread counts;
//! * **Rejection hygiene** — an all-rejecting run leaves graph *and*
//!   census byte-identical (exercising the tentative-apply revert path).

use dk_repro::core::dist::{Dist2K, Dist3K};
use dk_repro::core::generate::delta::{
    add_edge_tracked, frozen_degrees, remove_edge_tracked, Delta2K, Delta3K,
};
use dk_repro::core::generate::objective::{Objective2K, Objective3K};
use dk_repro::graph::{builders, ensemble, Graph};
use dk_repro::mcmc::{
    apply_swap, apply_swap_checked, dry_run, propose_swap, ChainOptions, McmcChain, NullObjective,
    ProposalKind, RunBudget,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy: a random simple graph with up to `n` nodes.
fn arb_graph(n: u32, max_edges: usize) -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0..n, 0..n), 4..max_edges)
        .prop_map(move |edges| Graph::from_edges_dedup(n as usize, edges).expect("in range"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Accumulated `Delta2K` over accepted plain swaps == re-extraction.
    #[test]
    fn delta2k_accumulation_matches_extraction(g in arb_graph(16, 48), seed in 0u64..500) {
        let mut g = g;
        if g.edge_count() < 2 {
            return Ok(());
        }
        let deg = frozen_degrees(&g);
        let initial = Dist2K::from_graph(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc = Delta2K::default();
        let mut accepted = 0u32;
        for _ in 0..400 {
            let Ok(p) = propose_swap(&g, &deg, ProposalKind::Plain, &mut rng) else {
                continue;
            };
            prop_assert!(dry_run(&g, &p).is_valid());
            apply_swap(&mut g, &p);
            acc.track_swap(&deg, &p.remove, &p.add);
            accepted += 1;
        }
        let mut patched = initial;
        acc.apply_to(&mut patched);
        prop_assert_eq!(patched, Dist2K::from_graph(&g), "after {} accepted", accepted);
    }

    /// Accumulated `Delta3K` over accepted plain swaps == re-extraction.
    #[test]
    fn delta3k_accumulation_matches_extraction(g in arb_graph(14, 40), seed in 0u64..500) {
        let mut g = g;
        if g.edge_count() < 2 {
            return Ok(());
        }
        let deg = frozen_degrees(&g);
        let initial = Dist3K::from_graph(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc = Delta3K::default();
        let mut step = Delta3K::default();
        for _ in 0..200 {
            let Ok(p) = propose_swap(&g, &deg, ProposalKind::Plain, &mut rng) else {
                continue;
            };
            step.clear();
            let [(a, b), (c, d)] = p.remove;
            let [(x, y), (z, w)] = p.add;
            remove_edge_tracked(&mut g, a, b, &deg, &mut step);
            remove_edge_tracked(&mut g, c, d, &deg, &mut step);
            add_edge_tracked(&mut g, x, y, &deg, &mut step);
            add_edge_tracked(&mut g, z, w, &deg, &mut step);
            for (&k, &dv) in &step.wedges {
                *acc.wedges.entry(k).or_insert(0) += dv;
            }
            for (&k, &dv) in &step.triangles {
                *acc.triangles.entry(k).or_insert(0) += dv;
            }
        }
        let mut patched = initial;
        acc.apply_to(&mut patched);
        prop_assert_eq!(patched, Dist3K::from_graph(&g));
    }

    /// The dry-run verdict always agrees with the mutating path, and a
    /// refusal leaves the graph untouched.
    #[test]
    fn dry_run_matches_mutating_path(g in arb_graph(12, 30), seed in 0u64..500) {
        let mut g = g;
        if g.edge_count() < 2 {
            return Ok(());
        }
        let deg = frozen_degrees(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            // Proposals drawn against the *current* graph are fresh;
            // re-checking one after later moves exercises stale records.
            let Ok(p) = propose_swap(&g, &deg, ProposalKind::Plain, &mut rng) else {
                continue;
            };
            let verdict = dry_run(&g, &p);
            let before = g.clone();
            match apply_swap_checked(&mut g, &p) {
                Ok(()) => {
                    prop_assert!(verdict.is_valid());
                    // keep walking from the mutated graph half the time,
                    // so later dry-runs see stale proposals too
                }
                Err(reason) => {
                    prop_assert!(!verdict.is_valid(), "dry-run valid but apply refused: {reason:?}");
                    prop_assert_eq!(&g, &before, "refused apply must not mutate");
                }
            }
        }
        // stale record: a proposal captured now, checked after more moves
        if let Ok(stale) = propose_swap(&g, &deg, ProposalKind::Plain, &mut rng) {
            for _ in 0..20 {
                if let Ok(p) = propose_swap(&g, &deg, ProposalKind::Plain, &mut rng) {
                    apply_swap(&mut g, &p);
                }
            }
            let verdict = dry_run(&g, &stale);
            let before = g.clone();
            let outcome = apply_swap_checked(&mut g, &stale);
            prop_assert_eq!(verdict.is_valid(), outcome.is_ok());
            if outcome.is_err() {
                prop_assert_eq!(&g, &before);
            }
        }
    }

    /// Plain double-edge swaps are drawn from a symmetric proposal
    /// density: `q(G → G') = q(G' → G)`, so the MH ratio is 1.
    #[test]
    fn plain_proposal_probabilities_symmetric(g in arb_graph(16, 48), seed in 0u64..500) {
        let g = g;
        if g.edge_count() < 2 {
            return Ok(());
        }
        let deg = frozen_degrees(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let Ok(p) = propose_swap(&g, &deg, ProposalKind::Plain, &mut rng) else {
                continue;
            };
            prop_assert_eq!(p.forward_prob, p.reverse_prob);
            prop_assert_eq!(p.proposal_ratio(), 1.0);
            // the reverse record is the reverse *move* with swapped roles
            let rev = p.reverse();
            prop_assert_eq!(rev.forward_prob, p.reverse_prob);
            prop_assert_eq!(rev.remove, p.add);
            prop_assert_eq!(rev.add, p.remove);
        }
    }
}

/// A fixed-seed chain produces bit-identical output regardless of the
/// thread count of the surrounding ensemble runner.
#[test]
fn chain_output_identical_across_thread_counts() {
    let base = builders::karate_club();
    let run_one = |_i: u64, rng: &mut StdRng| -> Graph {
        let seed = rng.gen::<u64>();
        let mut chain = McmcChain::seeded(base.clone(), seed, ChainOptions::default());
        chain.run(&mut NullObjective, &RunBudget::steps(2000));
        chain.into_graph()
    };
    let serial = ensemble::run(6, 42, 1, run_one);
    let parallel = ensemble::run(6, 42, 3, run_one);
    assert_eq!(serial, parallel);
    // and the replicas are genuinely distinct walks
    assert!(serial.windows(2).any(|w| w[0] != w[1]));
}

/// An all-rejecting run leaves graph and census byte-identical — both
/// for the non-mutating 2K objective and for the tentative-apply 3K
/// objective (whose rejections go through `revert_swap`).
#[test]
fn rejected_moves_leave_graph_and_census_byte_identical() {
    let original = builders::karate_club();
    let strict = ChainOptions {
        accept_neutral: false, // ΔD = 0 moves rejected too → reject all
        ..Default::default()
    };

    // 2K objective at its own target: every move has ΔD ≥ 0 → rejected.
    let mut obj2 = Objective2K::new(&original, &Dist2K::from_graph(&original));
    let mut chain = McmcChain::seeded(original.clone(), 7, strict);
    let run = chain.run(&mut obj2, &RunBudget::steps(3000));
    assert_eq!(run.accepted, 0);
    assert!(run.attempts > 0);
    let g = chain.into_graph();
    assert_eq!(g, original, "rejected 2K moves must not mutate");
    assert_eq!(obj2.current_jdd(), Dist2K::from_graph(&original));

    // 3K objective at its own target: evaluate mutates tentatively, so
    // every rejection exercises the revert path.
    let strict3 = ChainOptions {
        accept_neutral: false,
        proposal: ProposalKind::JddPreserving,
        ..Default::default()
    };
    let mut obj3 = Objective3K::new(&original, &Dist3K::from_graph(&original));
    let mut chain = McmcChain::seeded(original.clone(), 8, strict3);
    let run = chain.run(&mut obj3, &RunBudget::steps(3000));
    assert_eq!(run.accepted, 0);
    let g = chain.into_graph();
    assert_eq!(g, original, "reverted 3K moves must restore the graph");
    assert_eq!(obj3.current_census(), &Dist3K::from_graph(&original));
    assert_eq!(
        obj3.current_distance(),
        0.0,
        "incremental D3 must stay pinned at the target"
    );
}

//! The paper's headline claim, as a test: dK-random graphs reproduce the
//! original's metrics with error decreasing in `d`, on both evaluation
//! regimes (AS-like and HOT-like), with 3K essentially exact.

use dk_repro::core::generate::rewire::{randomize, RewireOptions};
use dk_repro::graph::Graph;
use dk_repro::metrics::{clustering, jdd};
use dk_repro::topologies::as_like::{skitter_like, AsLikeParams};
use dk_repro::topologies::hot_like::{hot_like, HotLikeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Ensemble-mean absolute error of (r, C̄) at each d.
fn metric_errors(original: &Graph, seeds: u64) -> Vec<(f64, f64)> {
    let r0 = jdd::assortativity(original);
    let c0 = clustering::mean_clustering(original);
    (0..=3u8)
        .map(|d| {
            let mut racc = 0.0;
            let mut cacc = 0.0;
            for s in 0..seeds {
                let mut rng = StdRng::seed_from_u64(1000 * s + d as u64);
                let mut g = original.clone();
                randomize(&mut g, d, &RewireOptions::default(), &mut rng);
                racc += (jdd::assortativity(&g) - r0).abs();
                cacc += (clustering::mean_clustering(&g) - c0).abs();
            }
            (racc / seeds as f64, cacc / seeds as f64)
        })
        .collect()
}

#[test]
fn hot_like_converges_with_d() {
    let mut rng = StdRng::seed_from_u64(9);
    let hot = hot_like(&HotLikeParams::small(), &mut rng);
    let errs = metric_errors(&hot, 3);
    // r: exact from d = 2 (JDD fixed); approximately from d = 1
    assert!(errs[0].0 > 0.1, "0K should destroy r: {errs:?}");
    assert!(errs[2].0 < 0.03, "2K must pin r: {errs:?}");
    assert!(errs[3].0 < 0.03, "3K must pin r: {errs:?}");
    // clustering: 3K exact
    assert!(errs[3].1 < 1e-9, "3K must pin C̄ exactly: {errs:?}");
}

#[test]
fn as_like_converges_with_d() {
    let mut rng = StdRng::seed_from_u64(10);
    let skitter = skitter_like(
        &AsLikeParams {
            nodes: 600,
            anneal_attempts: 150_000,
            ..AsLikeParams::small()
        },
        &mut rng,
    );
    let errs = metric_errors(&skitter, 3);
    // r pinned from d = 2; clustering error strictly better at 3K than 2K
    assert!(errs[2].0 < 0.02, "{errs:?}");
    assert!(
        errs[3].1 < errs[2].1 * 0.2,
        "3K clustering error must collapse vs 2K: {errs:?}"
    );
    assert!(errs[3].1 < 1e-9, "{errs:?}");
}

#[test]
fn one_k_hurts_hot_more_than_as() {
    // §5.2's comparative claim: 1K-random approximates AS-like graphs
    // "reasonably well" but HOT poorly. Measure via relative average-
    // distance error at d = 1.
    let mut rng = StdRng::seed_from_u64(11);
    let hot = hot_like(&HotLikeParams::small(), &mut rng);
    let skitter = skitter_like(
        &AsLikeParams {
            nodes: 600,
            anneal_attempts: 150_000,
            ..AsLikeParams::small()
        },
        &mut rng,
    );
    let rel_dist_err = |original: &Graph, seed: u64| {
        let (gcc0, _) = dk_repro::graph::giant_component(original);
        let d0 = dk_repro::metrics::distance::average_distance(&gcc0);
        let mut g = original.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        randomize(&mut g, 1, &RewireOptions::default(), &mut rng);
        let (gcc, _) = dk_repro::graph::giant_component(&g);
        (dk_repro::metrics::distance::average_distance(&gcc) - d0).abs() / d0
    };
    let hot_err = rel_dist_err(&hot, 21);
    let as_err = rel_dist_err(&skitter, 22);
    assert!(
        hot_err > 2.0 * as_err,
        "1K distance error: HOT {hot_err:.3} vs AS {as_err:.3} — HOT must suffer more"
    );
}

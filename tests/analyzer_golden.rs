//! Golden-value tests for the unified analysis API: every scalar metric
//! in the registry checked against closed-form values on small graphs
//! (complete graph, star, cycle) and known literature values on
//! Zachary's karate club, plus the determinism contract (parallel
//! analysis byte-identical to serial) and the shared-cache consistency
//! guarantees.

use dk_repro::graph::builders;
use dk_repro::graph::Graph;
use dk_repro::metrics::{Analyzer, AnyMetric, GccPolicy, Report};

fn analyze_all(g: &Graph) -> Report {
    Analyzer::new().all_metrics().threads(1).analyze(g)
}

fn assert_scalar(rep: &Report, name: &str, want: f64) {
    let got = rep
        .scalar(name)
        .unwrap_or_else(|| panic!("{name} undefined"));
    assert!((got - want).abs() < 1e-9, "{name}: got {got}, want {want}");
}

#[test]
fn complete_graph_golden_values() {
    // K5: every scalar has a closed form.
    let rep = analyze_all(&builders::complete(5));
    assert_scalar(&rep, "n", 5.0);
    assert_scalar(&rep, "m", 10.0);
    assert_scalar(&rep, "gcc_fraction", 1.0);
    assert_scalar(&rep, "k_avg", 4.0);
    assert_scalar(&rep, "r", 0.0); // regular graph: undefined → 0 convention
    assert_scalar(&rep, "c_mean", 1.0);
    assert_scalar(&rep, "transitivity", 1.0);
    assert_scalar(&rep, "s", 160.0); // 10 edges × 4·4
    assert_scalar(&rep, "s2", 0.0); // every neighbor pair is closed
    assert_scalar(&rep, "kcore_max", 4.0);
    assert_scalar(&rep, "d_avg", 1.0);
    assert_scalar(&rep, "d_std", 0.0);
    assert_scalar(&rep, "diameter", 1.0);
    assert_scalar(&rep, "b_max", 0.0); // no pair needs an intermediary
    assert_scalar(&rep, "lambda1", 1.25); // K_n: n/(n−1)
    assert_scalar(&rep, "lambda_n", 1.25);
}

#[test]
fn star_golden_values() {
    // S5 (hub + 5 leaves): maximally disassortative, hub carries all.
    let rep = analyze_all(&builders::star(5));
    assert_scalar(&rep, "n", 6.0);
    assert_scalar(&rep, "m", 5.0);
    assert_scalar(&rep, "k_avg", 10.0 / 6.0);
    assert_scalar(&rep, "r", -1.0);
    assert_scalar(&rep, "c_mean", 0.0);
    assert_scalar(&rep, "transitivity", 0.0);
    assert_scalar(&rep, "s", 25.0); // 5 edges × 5·1
    assert_scalar(&rep, "s2", 10.0); // C(5,2) wedges × 1·1
    assert_scalar(&rep, "kcore_max", 1.0);
    assert_scalar(&rep, "d_avg", 5.0 / 3.0); // 10 pairs at 1, 20 at 2 (ordered)
    assert_scalar(&rep, "d_std", (2.0f64 / 9.0).sqrt());
    assert_scalar(&rep, "diameter", 2.0);
    assert_scalar(&rep, "b_max", 1.0); // hub on every leaf–leaf pair
    assert_scalar(&rep, "lambda1", 1.0); // K_{1,k}: {0, 1^(k−1), 2}
    assert_scalar(&rep, "lambda_n", 2.0);
}

#[test]
fn cycle_golden_values() {
    // C6: ring symmetry gives every value in closed form.
    let rep = analyze_all(&builders::cycle(6));
    assert_scalar(&rep, "n", 6.0);
    assert_scalar(&rep, "m", 6.0);
    assert_scalar(&rep, "k_avg", 2.0);
    assert_scalar(&rep, "r", 0.0); // regular
    assert_scalar(&rep, "c_mean", 0.0);
    assert_scalar(&rep, "s", 24.0); // 6 edges × 2·2
    assert_scalar(&rep, "s2", 24.0); // 6 wedges × 2·2
    assert_scalar(&rep, "kcore_max", 2.0);
    // ordered pairs: 12 at distance 1, 12 at 2, 6 at 3 → mean 1.8
    assert_scalar(&rep, "d_avg", 1.8);
    assert_scalar(&rep, "d_std", 0.56f64.sqrt());
    assert_scalar(&rep, "diameter", 3.0);
    // bc(v) = 2 by hand enumeration; normalized by (5·4)/2 = 10 → 0.2
    assert_scalar(&rep, "b_max", 0.2);
    // C_n eigenvalues 1 − cos(2πk/n)
    assert_scalar(&rep, "lambda1", 0.5);
    assert_scalar(&rep, "lambda_n", 2.0);
}

#[test]
fn karate_literature_values() {
    let rep = analyze_all(&builders::karate_club());
    assert_scalar(&rep, "n", 34.0);
    assert_scalar(&rep, "m", 78.0);
    let close = |name: &str, want: f64, tol: f64| {
        let got = rep.scalar(name).unwrap();
        assert!((got - want).abs() < tol, "{name}: got {got}, want {want}");
    };
    close("r", -0.4756, 0.001); // Newman 2002
    close("c_mean", 0.5879, 0.001); // deg-≥2 convention
    close("transitivity", 0.2557, 0.001);
    close("d_avg", 2.4082, 0.001);
    close("diameter", 5.0, 1e-9);
    close("kcore_max", 4.0, 1e-9);
    close("b_max", 231.0714 / 528.0, 1e-4); // Brandes bc(0) / C(33,2)
}

#[test]
fn series_metrics_consistent_with_scalars() {
    let g = builders::karate_club();
    let rep = analyze_all(&g);
    // degree_dist sums to 1 and reproduces k_avg
    let pk = rep.series("degree_dist").unwrap();
    let total: f64 = pk.iter().map(|&(_, p)| p).sum();
    assert!((total - 1.0).abs() < 1e-12);
    let mean: f64 = pk.iter().map(|&(k, p)| k as f64 * p).sum();
    assert!((mean - rep.scalar("k_avg").unwrap()).abs() < 1e-12);
    // d_x sums to 1 over positive distances
    let dx = rep.series("d_x").unwrap();
    let total: f64 = dx.iter().map(|&(_, p)| p).sum();
    assert!((total - 1.0).abs() < 1e-9);
    // b_k maximum bounded by b_max
    let bk = rep.series("b_k").unwrap();
    let max_bk = bk.iter().map(|&(_, b)| b).fold(0.0f64, f64::max);
    assert!(max_bk <= rep.scalar("b_max").unwrap() + 1e-12);
}

#[test]
fn parallel_analyzer_is_byte_identical_to_serial() {
    // the ISSUE-2 determinism contract, on a non-trivial graph
    let g = builders::grid(7, 9);
    let base = Analyzer::new().all_metrics();
    let serial = base.clone().threads(1).analyze(&g);
    for threads in [2, 3, 8, 0] {
        let parallel = base.clone().threads(threads).analyze(&g);
        assert_eq!(serial, parallel, "threads = {threads}");
        assert_eq!(serial.to_json(), parallel.to_json(), "threads = {threads}");
    }
}

#[test]
fn shared_cache_values_match_isolated_computation() {
    // computing d_avg and b_max together (fused traversal) must give
    // byte-identical values to computing each alone
    let g = builders::karate_club();
    let together = Analyzer::new()
        .metric_names("d_avg,d_std,b_max")
        .unwrap()
        .threads(1)
        .analyze(&g);
    let d_alone = Analyzer::new()
        .metric_names("d_avg,d_std")
        .unwrap()
        .threads(1)
        .analyze(&g);
    let b_alone = Analyzer::new()
        .metric_names("b_max")
        .unwrap()
        .threads(1)
        .analyze(&g);
    assert_eq!(together.scalar("d_avg"), d_alone.scalar("d_avg"));
    assert_eq!(together.scalar("d_std"), d_alone.scalar("d_std"));
    assert_eq!(together.scalar("b_max"), b_alone.scalar("b_max"));
}

#[test]
fn gcc_policy_respected_end_to_end() {
    let mut g = builders::complete(4);
    g.add_node(); // isolated
    let gcc = Analyzer::new().metric_names("n,k_avg").unwrap().analyze(&g);
    assert_eq!(gcc.scalar("n"), Some(4.0));
    assert_eq!(gcc.scalar("k_avg"), Some(3.0));
    let whole = Analyzer::new()
        .metric_names("n,k_avg")
        .unwrap()
        .gcc(GccPolicy::Whole)
        .analyze(&g);
    assert_eq!(whole.scalar("n"), Some(5.0));
    assert_eq!(whole.scalar("k_avg"), Some(12.0 / 5.0));
}

#[test]
fn ensemble_summary_statistics_across_topologies() {
    use dk_repro::topologies::er;
    let analyzer = Analyzer::new().metric_names("k_avg,r,c_mean").unwrap();
    let summary = analyzer.run_ensemble(8, 42, |rng| er::gnm(60, 120, rng));
    assert_eq!(summary.replicas, 8);
    let k = summary.scalar("k_avg").unwrap();
    // G(n,m) pins m: k̄ = 2·120/60 = 4 on the whole graph; the GCC can
    // only shed isolated/low-degree nodes, raising k̄ slightly
    assert!(k.mean >= 3.9 && k.mean <= 4.3, "k̄ = {}", k.mean);
    assert!(k.min <= k.mean && k.mean <= k.max);
    assert!(k.std >= 0.0);
    assert_eq!(k.defined, 8);
    // thread invariance of the whole summary object
    let serial = analyzer
        .clone()
        .threads(1)
        .run_ensemble(8, 42, |rng| er::gnm(60, 120, rng));
    let parallel = analyzer
        .clone()
        .threads(4)
        .run_ensemble(8, 42, |rng| er::gnm(60, 120, rng));
    assert_eq!(serial, parallel);
}

#[test]
fn every_scalar_metric_has_a_value_on_karate() {
    // registry completeness: nothing silently skipped on a healthy graph
    let rep = analyze_all(&builders::karate_club());
    for m in AnyMetric::all() {
        let rec = rep.record(m.name()).expect("selected via all_metrics");
        assert!(
            !matches!(rec.value, dk_repro::metrics::MetricValue::Undefined),
            "{} undefined on karate",
            m.name()
        );
    }
}

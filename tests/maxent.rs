//! Maximum-entropy forms of dK-random graphs (paper §4.2 / Table 1).
//!
//! * 0K-random (`G(n,p)`) graphs have Poisson degree distributions;
//! * 1K-random graphs have the product-form JDD
//!   `P_1K(k1,k2) = k1·P(k1)·k2·P(k2)/k̄²` — maximum joint entropy given
//!   the marginals.

use dk_repro::core::dist::{Dist1K, Dist2K};
use dk_repro::core::generate::rewire::{randomize, RewireOptions};
use dk_repro::graph::builders;
use dk_repro::metrics::degree::poisson_pmf;
use dk_repro::topologies::er;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn zero_k_random_degrees_are_poisson() {
    let mut rng = StdRng::seed_from_u64(1);
    let n = 4000;
    let kavg = 5.0;
    let g = er::gnp(n, kavg / n as f64, &mut rng);
    let d1 = Dist1K::from_graph(&g);
    // chi-squared against Poisson(k̄), bins with expected ≥ 5
    let mut chi2 = 0.0;
    let mut dof = 0;
    for k in 0..20 {
        let expected = n as f64 * poisson_pmf(kavg, k);
        if expected < 5.0 {
            continue;
        }
        let got = d1.counts.get(k).copied().unwrap_or(0) as f64;
        chi2 += (got - expected).powi(2) / expected;
        dof += 1;
    }
    assert!(dof >= 10, "need enough bins for the test");
    assert!(chi2 < 45.0, "chi² = {chi2} over {dof} bins");
}

#[test]
fn one_k_random_jdd_is_product_form_on_pseudographs() {
    // Table 1's maximum-entropy JDD, P_1K(k1,k2) ∝ k1 P(k1)·k2 P(k2),
    // holds exactly for the *pseudograph* ensemble (the paper's footnote
    // 4: narrowing to simple graphs introduces structural constraints).
    // Configuration-model expectation per unordered class pair:
    //   k1 ≠ k2: n(k1)k1 · n(k2)k2 / (2m − 1)
    //   k1 = k2: (n(k1)k1 · (n(k1)k1 − k1)) / (2(2m − 1))  [stub pairing]
    // Use fat degree classes so per-cell expectations are large enough
    // for tight tolerances.
    let mut seq: Vec<usize> = Vec::new();
    seq.extend(std::iter::repeat_n(3, 200));
    seq.extend(std::iter::repeat_n(5, 100));
    seq.extend(std::iter::repeat_n(8, 30));
    seq.extend(std::iter::repeat_n(12, 10));
    let d1 = Dist1K::from_degree_sequence(&seq);
    let two_m = seq.iter().sum::<usize>() as f64;
    let stubs = |k: usize| k as f64 * d1.counts.get(k).copied().unwrap_or(0) as f64;

    let mut rng = StdRng::seed_from_u64(2);
    const RUNS: usize = 120;
    let mut observed: std::collections::BTreeMap<(usize, usize), f64> = Default::default();
    for _ in 0..RUNS {
        let res =
            dk_repro::core::generate::pseudograph::generate_1k_multigraph(&d1, &mut rng).unwrap();
        // count edge instances by PRESCRIBED degrees (multigraph degrees
        // equal the sequence exactly)
        for &(u, v) in res.multigraph.edges() {
            let (a, b) = (res.multigraph.degree(u), res.multigraph.degree(v));
            let key = (a.min(b), a.max(b));
            *observed.entry(key).or_insert(0.0) += 1.0;
        }
    }
    let mut checked = 0;
    for (&(k1, k2), &count) in &observed {
        let mean_count = count / RUNS as f64;
        let expect = if k1 == k2 {
            stubs(k1) * (stubs(k1) - k1 as f64) / (2.0 * (two_m - 1.0))
        } else {
            stubs(k1) * stubs(k2) / (two_m - 1.0)
        };
        if expect < 10.0 {
            continue; // noise-dominated cells
        }
        let rel = (mean_count - expect).abs() / expect;
        assert!(
            rel < 0.1,
            "cell ({k1},{k2}): ensemble mean {mean_count:.2} vs product-form {expect:.2}"
        );
        checked += 1;
    }
    assert!(checked >= 5, "checked only {checked} cells");
}

#[test]
fn simple_graph_constraints_depress_hub_hub_cells() {
    // The other half of footnote 4, made observable: on *simple* 1K-random
    // graphs the biggest hub pair (16, 17) can hold at most 1 edge, while
    // the pseudograph product form predicts 17·16/(2m−1) ≈ 1.76.
    let original = builders::karate_club();
    let mut rng = StdRng::seed_from_u64(7);
    const RUNS: usize = 40;
    let mut acc = 0.0;
    for _ in 0..RUNS {
        let mut g = original.clone();
        randomize(&mut g, 1, &RewireOptions::default(), &mut rng);
        acc += Dist2K::from_graph(&g).m(16, 17) as f64;
    }
    let simple_mean = acc / RUNS as f64;
    let product_form = 17.0 * 16.0 / (2.0 * 78.0 - 1.0);
    assert!(product_form > 1.5);
    assert!(
        simple_mean <= 1.0,
        "simple graphs admit at most one (16,17) edge; got mean {simple_mean}"
    );
}

#[test]
fn one_k_random_graphs_lose_higher_structure() {
    // The flip side of maximum entropy: 1K-random graphs of a clustered
    // original have near-max-entropy (≈ low) clustering.
    let original = builders::karate_club();
    let c_orig = dk_repro::metrics::clustering::mean_clustering(&original);
    let mut rng = StdRng::seed_from_u64(3);
    let mut acc = 0.0;
    const RUNS: usize = 20;
    for _ in 0..RUNS {
        let mut g = original.clone();
        randomize(&mut g, 1, &RewireOptions::default(), &mut rng);
        acc += dk_repro::metrics::clustering::mean_clustering(&g);
    }
    let c_rand = acc / RUNS as f64;
    // Karate is tiny with enormous hubs (k_max = 17 of n = 34), so the
    // simple-graph 1K-random ensemble has a high *structural* clustering
    // floor — the drop is real but bounded (cf. paper footnote 4).
    assert!(
        c_rand < c_orig * 0.75,
        "1K-random C̄ {c_rand:.3} should sit clearly below original {c_orig:.3}"
    );
}

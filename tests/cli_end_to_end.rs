//! End-to-end tests of the `dk` binary: the Orbis-style workflow driven
//! through the real executable (argument parsing included).

use std::path::PathBuf;
use std::process::Command;

fn dk_bin() -> PathBuf {
    // integration tests run from the workspace root; the binary is built
    // as a dependency of the test profile
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("target");
    p.push(if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    });
    p.push("dk");
    p
}

fn tmpdir() -> PathBuf {
    let d = std::env::temp_dir().join("dk_e2e");
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn write_karate(dir: &std::path::Path) -> PathBuf {
    let p = dir.join("karate.edges");
    let g = dk_repro::graph::builders::karate_club();
    dk_repro::graph::io::save_edge_list(&g, &p).unwrap();
    p
}

fn run(args: &[&str]) -> (bool, String) {
    let bin = dk_bin();
    if !bin.exists() {
        // binary not built in this profile — build it once
        let mut args = vec!["build", "-p", "dk-cli"];
        if !cfg!(debug_assertions) {
            args.push("--release");
        }
        let status = Command::new(env!("CARGO"))
            .args(&args)
            .status()
            .expect("cargo build dk-cli");
        assert!(status.success());
    }
    let out = Command::new(&bin).args(args).output().expect("run dk");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn help_and_unknown_command() {
    let (ok, text) = run(&["--help"]);
    assert!(ok);
    assert!(text.contains("USAGE"));
    let (ok, text) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(text.contains("unknown command"));
}

#[test]
fn extract_generate_compare_workflow() {
    let dir = tmpdir();
    let graph = write_karate(&dir);
    let dist = dir.join("karate.2k");
    let out = dir.join("karate_regen.edges");

    let (ok, text) = run(&[
        "extract",
        "2",
        graph.to_str().unwrap(),
        "-o",
        dist.to_str().unwrap(),
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("n = 34"));

    let (ok, text) = run(&[
        "generate",
        "2",
        dist.to_str().unwrap(),
        "-o",
        out.to_str().unwrap(),
        "--algo",
        "matching",
        "--seed",
        "5",
    ]);
    assert!(ok, "{text}");

    let (ok, text) = run(&["compare", graph.to_str().unwrap(), out.to_str().unwrap()]);
    assert!(ok, "{text}");
    assert!(
        text.contains("D1 = 0"),
        "degrees must match exactly: {text}"
    );
    assert!(text.contains("D2 = 0"), "JDD must match exactly: {text}");
}

#[test]
fn rewire_and_metrics_via_binary() {
    let dir = tmpdir();
    let graph = write_karate(&dir);
    let out = dir.join("karate_3k.edges");
    let (ok, text) = run(&[
        "rewire",
        "3",
        graph.to_str().unwrap(),
        "-o",
        out.to_str().unwrap(),
        "--attempts",
        "3000",
    ]);
    assert!(ok, "{text}");
    let (ok, text) = run(&["compare", graph.to_str().unwrap(), out.to_str().unwrap()]);
    assert!(ok, "{text}");
    assert!(text.contains("D3 = 0"), "3K rewiring preserves 3K: {text}");
    let (ok, text) = run(&["metrics", graph.to_str().unwrap()]);
    assert!(ok, "{text}");
    assert!(text.contains("k_avg"));
}

#[test]
fn metrics_flags_via_binary() {
    let dir = tmpdir();
    let graph = write_karate(&dir);
    let path = graph.to_str().unwrap();

    // --metrics reaches betweenness (unreachable pre-facade)
    let (ok, text) = run(&["metrics", path, "--metrics", "b_max,d_avg"]);
    assert!(ok, "{text}");
    assert!(text.contains("b_max"), "{text}");

    // --format json emits the machine-readable report
    let (ok, text) = run(&["metrics", path, "--format", "json", "--metrics", "k_avg"]);
    assert!(ok, "{text}");
    assert!(text.contains("\"metrics\":{\"k_avg\":"), "{text}");

    // --no-gcc is reflected in the graph summary
    let (ok, text) = run(&["metrics", path, "--format", "json", "--no-gcc"]);
    assert!(ok, "{text}");
    assert!(text.contains("\"gcc\":false"), "{text}");

    // unknown metric and unknown format fail cleanly
    let (ok, text) = run(&["metrics", path, "--metrics", "bogus"]);
    assert!(!ok);
    assert!(text.contains("unknown metric"), "{text}");
    let (ok, text) = run(&["metrics", path, "--format", "yaml"]);
    assert!(!ok);
    assert!(text.contains("unknown format"), "{text}");

    // --metrics help prints the capability listing, even without a graph
    let (ok, text) = run(&["metrics", "--metrics", "help"]);
    assert!(ok, "{text}");
    assert!(text.contains("all-pairs"), "{text}");

    // compare honors the shared flags instead of silently ignoring them
    let (ok, text) = run(&["compare", path, path, "--metrics", "bogus"]);
    assert!(!ok);
    assert!(text.contains("unknown metric"), "{text}");
}

#[test]
fn streaming_flags_via_binary() {
    let dir = tmpdir();
    let graph = write_karate(&dir);
    let path = graph.to_str().unwrap();
    let battery = ["--metrics", "d_avg,d_std,diameter,b_max,distance_approx"];

    // baseline: default route, machine-readable report
    let (ok, base) = run(&[&["metrics", path, "--format", "json"], &battery[..]].concat());
    assert!(ok, "{base}");

    // --shards at the default count must not change a single byte of
    // the JSON report, and the shape keys must all be present
    let (ok, streamed) = run(&[
        &["metrics", path, "--format", "json", "--shards", "64"],
        &battery[..],
    ]
    .concat());
    assert!(ok, "{streamed}");
    assert_eq!(base, streamed, "streamed route changed the report");
    for key in [
        "\"graph\":{",
        "\"analyzed_nodes\":34",
        "\"metrics\":{",
        "\"d_avg\":",
        "\"b_max\":",
        "\"distance_approx\":",
    ] {
        assert!(streamed.contains(key), "missing {key}: {streamed}");
    }

    // --memory-budget with suffixes parses and leaves results identical
    let (ok, budgeted) = run(&[
        &[
            "metrics",
            path,
            "--format",
            "json",
            "--memory-budget",
            "512M",
        ],
        &battery[..],
    ]
    .concat());
    assert!(ok, "{budgeted}");
    assert_eq!(base, budgeted);

    // compare honors the shared streaming flags too
    let (ok, text) = run(&["compare", path, path, "--shards", "8"]);
    assert!(ok, "{text}");
    assert!(text.contains("D1 = 0"), "{text}");

    // invalid values are rejected with CLI-worded errors naming the flag
    let (ok, text) = run(&["metrics", path, "--shards", "0"]);
    assert!(!ok);
    assert!(text.contains("--shards"), "{text}");
    assert!(text.contains("positive shard count"), "{text}");
    let (ok, text) = run(&["metrics", path, "--shards", "lots"]);
    assert!(!ok);
    assert!(text.contains("--shards"), "{text}");
    for bad in ["0", "huh", "12Q", ""] {
        let (ok, text) = run(&["metrics", path, "--memory-budget", bad]);
        assert!(!ok, "--memory-budget {bad:?} must be rejected");
        assert!(text.contains("--memory-budget"), "{text}");
        assert!(text.contains("512M"), "hint present: {text}");
        assert!(!text.contains("Analyzer"), "library API leaked: {text}");
    }
    // missing values fail cleanly
    let (ok, text) = run(&["metrics", path, "--shards"]);
    assert!(!ok);
    assert!(text.contains("missing value after --shards"), "{text}");

    // the capability listing documents the streaming route
    let (ok, text) = run(&["metrics", "--metrics", "help"]);
    assert!(ok, "{text}");
    assert!(text.contains("--shards"), "{text}");
    assert!(text.contains("--memory-budget"), "{text}");
}

#[test]
fn sketch_flags_via_binary() {
    let dir = tmpdir();
    let graph = write_karate(&dir);
    let path = graph.to_str().unwrap();

    // the sketch metrics are reachable by name; the JSON report carries
    // the scalar twins and the [[x, p], ...] series shape
    let (ok, text) = run(&[
        "metrics",
        path,
        "--metrics",
        "distance_sketch,avg_distance_sketch,effective_diameter_sketch",
        "--sketch-bits",
        "8",
        "--format",
        "json",
    ]);
    assert!(ok, "{text}");
    for key in [
        "\"graph\":{",
        "\"analyzed_nodes\":34",
        "\"distance_sketch\":[[1,",
        "\"avg_distance_sketch\":",
        "\"effective_diameter_sketch\":",
    ] {
        assert!(text.contains(key), "missing {key}: {text}");
    }
    assert!(!text.contains("null"), "sketch values defined: {text}");

    // --sketch-bits is honored: a bigger register file sharpens the
    // estimate, so the two reports generally differ — but both parse
    let (ok, b10) = run(&[
        "metrics",
        path,
        "--metrics",
        "avg_distance_sketch",
        "--sketch-bits",
        "10",
        "--format",
        "json",
    ]);
    assert!(ok, "{b10}");
    assert!(b10.contains("\"avg_distance_sketch\":"), "{b10}");

    // invalid values are rejected with CLI-worded errors naming the flag
    for bad in ["3", "17", "0", "huh", "-4", "8.5"] {
        let (ok, text) = run(&["metrics", path, "--sketch-bits", bad]);
        assert!(!ok, "--sketch-bits {bad:?} must be rejected");
        assert!(text.contains("--sketch-bits"), "{text}");
        assert!(text.contains("4..=16"), "range named: {text}");
        assert!(!text.contains("Analyzer"), "library API leaked: {text}");
    }
    let (ok, text) = run(&["metrics", path, "--sketch-bits"]);
    assert!(!ok);
    assert!(text.contains("missing value after --sketch-bits"), "{text}");

    // compare honors the flag too
    let (ok, text) = run(&[
        "compare",
        path,
        path,
        "--metrics",
        "k_avg,avg_distance_sketch",
        "--sketch-bits",
        "6",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("avg_distance_sketch"), "{text}");

    // the capability listing documents the new cost class and its knob
    let (ok, text) = run(&["metrics", "--metrics", "help"]);
    assert!(ok, "{text}");
    assert!(text.contains("sketch"), "{text}");
    assert!(text.contains("--sketch-bits"), "{text}");
    assert!(
        text.contains("1.04/sqrt(2^B)"),
        "error formula listed: {text}"
    );
}

#[test]
fn missing_arguments_fail_cleanly() {
    let (ok, text) = run(&["extract", "2"]);
    assert!(!ok);
    assert!(text.contains("missing argument"), "{text}");
    let dir = tmpdir();
    let graph = write_karate(&dir);
    let (ok, text) = run(&["extract", "2", graph.to_str().unwrap()]);
    assert!(!ok);
    assert!(text.contains("missing -o"), "{text}");
}

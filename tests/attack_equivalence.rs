//! Equivalence suite for the reverse union-find attack engine
//! (`dk_metrics::attack`): the incremental trajectory must be
//! byte-identical to a per-step `connected_components` recompute oracle
//! across graph shapes, strategies, and seeds — plus closed-form
//! anchors, the GCC tie-break inheritance, and fixed-seed thread-count
//! bit-identity through the ensemble runner.

use dk_repro::graph::csr::CsrGraph;
use dk_repro::graph::traversal;
use dk_repro::graph::{builders, ensemble, Graph, NodeId};
use dk_repro::metrics::attack::{
    self, gcc_trajectory, removal_order, AttackOptions, Strategy as AttackStrategy,
    DEFAULT_ATTACK_SEED,
};
use dk_repro::metrics::Analyzer;
use proptest::prelude::*;

/// Strategy: a random simple graph with up to `n` nodes.
fn arb_graph(n: u32, max_edges: usize) -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0..n, 0..n), 0..max_edges)
        .prop_map(move |edges| Graph::from_edges_dedup(n as usize, edges).expect("in range"))
}

/// Oracle: recompute component structure from scratch after every
/// removal prefix — the `O(n·(n+m))` baseline the engine replaces.
fn oracle_trajectory(g: &Graph, order: &[NodeId]) -> (Vec<u32>, Vec<u32>) {
    let n = g.node_count();
    let mut gcc_sizes = Vec::with_capacity(n + 1);
    let mut component_counts = Vec::with_capacity(n + 1);
    for i in 0..=n {
        let removed = &order[..i];
        let keep: Vec<NodeId> = (0..n as NodeId).filter(|u| !removed.contains(u)).collect();
        let (sub, _) = g.subgraph(&keep).expect("valid selection");
        let sizes = traversal::component_sizes(&sub);
        gcc_sizes.push(sizes.iter().copied().max().unwrap_or(0) as u32);
        component_counts.push(sizes.len() as u32);
    }
    (gcc_sizes, component_counts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The reverse union-find sweep equals the per-step recompute
    /// oracle for every strategy on arbitrary graphs.
    #[test]
    fn trajectory_matches_per_step_oracle(
        g in arb_graph(28, 90),
        strategy_idx in 0usize..4,
        seed in 0u64..512,
    ) {
        let strategy = AttackStrategy::all()[strategy_idx];
        let csr = CsrGraph::from_graph(&g);
        let order = removal_order(&csr, strategy, seed, 8, 1);
        let (sizes, counts) = gcc_trajectory(&csr, &order);
        let (oracle_sizes, oracle_counts) = oracle_trajectory(&g, &order);
        prop_assert_eq!(sizes, oracle_sizes, "{} seed {}", strategy, seed);
        prop_assert_eq!(counts, oracle_counts, "{} seed {}", strategy, seed);
    }

    /// Checkpoint snapshots agree with `giant_component_nodes` on the
    /// residual subgraph — same size AND the same smallest-node-id
    /// tie-break rule, at every removal prefix.
    #[test]
    fn checkpoint_gcc_matches_giant_component_nodes(
        g in arb_graph(20, 50),
        seed in 0u64..256,
    ) {
        let n = g.node_count();
        let csr = CsrGraph::from_graph(&g);
        let opts = AttackOptions {
            strategy: AttackStrategy::Random,
            seed,
            checkpoints: (0..=4).map(|i| i as f64 / 4.0).collect(),
        };
        let rep = attack::attack_sweep(&g, &csr, &opts, 1, 1);
        for c in &rep.checkpoints {
            let keep: Vec<NodeId> = (0..n as NodeId)
                .filter(|u| !rep.order[..c.removed].contains(u))
                .collect();
            let (sub, map) = g.subgraph(&keep).expect("valid selection");
            let giant: Vec<NodeId> = traversal::giant_component_nodes(&sub)
                .into_iter()
                .map(|u| map[u as usize])
                .collect();
            prop_assert_eq!(c.gcc_nodes, giant.len(), "removed {}", c.removed);
            // the snapshot's hub must live inside the oracle's winner —
            // a size-tie broken differently would put it elsewhere
            if let Some(hub) = c.hub {
                prop_assert!(giant.contains(&hub), "removed {}: hub {} not in {:?}",
                    c.removed, hub, giant);
            }
        }
    }
}

#[test]
fn path_star_and_k5_anchors() {
    // P4 under degree attack: interior node 1 first halves it
    let path = builders::path(4);
    let csr = CsrGraph::from_graph(&path);
    let order = removal_order(&csr, AttackStrategy::Degree, 0, 1, 1);
    let (sizes, _) = gcc_trajectory(&csr, &order);
    assert_eq!(sizes, vec![4, 2, 1, 1, 0]);

    // S4 (hub + 4 leaves) collapses at step 1 under degree attack:
    // 1.0 → 0.2 crossing interpolates to (0.5/0.8)/5 = 0.125
    let star = builders::star(4);
    let csr = CsrGraph::from_graph(&star);
    let order = removal_order(&csr, AttackStrategy::Degree, 0, 1, 1);
    assert_eq!(order[0], 0, "hub first");
    let (sizes, counts) = gcc_trajectory(&csr, &order);
    assert_eq!(sizes[1], 1, "all leaves isolated after one removal");
    assert_eq!(counts[1], 4);
    let t = attack::threshold_from_sizes(&sizes, 5, 0.5).unwrap();
    assert!((t - 0.125).abs() < 1e-12, "{t}");

    // K5 loses exactly one node per removal under any strategy; the
    // 1.0-to-0.8… curve crosses 1/2 midway: threshold 0.5 exactly
    let k5 = builders::complete(5);
    let csr = CsrGraph::from_graph(&k5);
    for strategy in AttackStrategy::all() {
        let order = removal_order(&csr, strategy, 11, 4, 1);
        let (sizes, _) = gcc_trajectory(&csr, &order);
        assert_eq!(sizes, vec![5, 4, 3, 2, 1, 0], "{strategy}");
        let t = attack::threshold_from_sizes(&sizes, 5, 0.5).unwrap();
        assert!((t - 0.5).abs() < 1e-12, "{strategy}: {t}");
    }
}

#[test]
fn two_triangle_tie_break_is_inherited() {
    // components {1,3,5} and {0,2,4} tie at size 3: the documented rule
    // (smallest node id wins) must flow from giant_component_nodes
    // through the attack engine's snapshots
    let g = Graph::from_edges(6, [(1, 3), (3, 5), (5, 1), (0, 2), (2, 4), (4, 0)]).unwrap();
    let csr = CsrGraph::from_graph(&g);
    assert_eq!(traversal::giant_component_nodes(&csr), vec![0, 2, 4]);
    let opts = AttackOptions {
        strategy: AttackStrategy::Random,
        seed: 3,
        checkpoints: vec![0.0],
    };
    let rep = attack::attack_sweep(&g, &csr, &opts, 4, 1);
    let c = &rep.checkpoints[0];
    assert_eq!(c.gcc_nodes, 3);
    assert_eq!(c.hub, Some(0), "winner is the component containing node 0");
}

#[test]
fn fixed_seed_reports_are_bit_identical_across_thread_counts() {
    // fan a batch of sweeps over the ensemble runner at different
    // thread counts: the serialized reports must match byte for byte
    let sweep_batch = |threads: usize| -> Vec<String> {
        ensemble::run(6, 0xDECAF, threads, |i, rng| {
            use rand::Rng;
            let n = 30 + (i as usize) * 7;
            let edges: Vec<(NodeId, NodeId)> = (0..3 * n)
                .map(|_| (rng.gen_range(0..n as NodeId), rng.gen_range(0..n as NodeId)))
                .collect();
            let g = Graph::from_edges_dedup(n, edges).expect("in range");
            let csr = CsrGraph::from_graph(&g);
            let strategy = AttackStrategy::all()[i as usize % 4];
            let opts = AttackOptions {
                strategy,
                seed: DEFAULT_ATTACK_SEED.wrapping_add(i),
                checkpoints: vec![0.1, 0.5],
            };
            attack::attack_sweep(&g, &csr, &opts, 8, 1).to_json()
        })
    };
    let serial = sweep_batch(1);
    let parallel = sweep_batch(4);
    assert_eq!(serial, parallel);
    assert!(serial.iter().all(|j| j.contains("\"attack_threshold\":")));
}

#[test]
fn relabel_option_is_invisible_in_attack_reports() {
    // the locality relabeling (PR 10) must never leak permuted ids into
    // attack output: hub ids, removal order, and the ranked strategies
    // all read the external-id CSR snapshot, so the serialized report is
    // byte-identical with relabeling on and off — for every strategy
    let g = builders::karate_club();
    for strategy in AttackStrategy::all() {
        let opts = AttackOptions {
            strategy,
            checkpoints: vec![0.0, 0.25, 0.5],
            ..Default::default()
        };
        let plain = Analyzer::new().attack(&g, &opts);
        let relabeled = Analyzer::new().relabel(true).attack(&g, &opts);
        assert_eq!(plain.to_json(), relabeled.to_json(), "{strategy}");
    }
}

#[test]
fn analyzer_entry_reuses_gcc_policy_and_registry_metrics_are_defined() {
    let g = builders::karate_club();
    let rep = Analyzer::new().attack(
        &g,
        &AttackOptions {
            strategy: AttackStrategy::Degree,
            checkpoints: vec![0.0, 0.5],
            ..Default::default()
        },
    );
    assert_eq!(rep.nodes, 34);
    assert_eq!(rep.gcc_sizes[0], 34);
    assert_eq!(*rep.gcc_sizes.last().unwrap(), 0);
    let t = rep.threshold(0.5).expect("karate halves under attack");
    assert!(t > 0.0 && t < 1.0, "{t}");

    // the registry metrics ride the normal analyze() path and agree
    // with the engine
    let report = Analyzer::new()
        .metric_names("attack_threshold,random_failure_threshold")
        .unwrap()
        .analyze(&g);
    let attack_t = report.scalar("attack_threshold").expect("defined");
    let failure_t = report.scalar("random_failure_threshold").expect("defined");
    assert!((attack_t - t).abs() < 1e-12, "{attack_t} vs {t}");
    assert!(
        failure_t > attack_t,
        "random failure tolerates more removals than targeted attack \
         ({failure_t} vs {attack_t})"
    );
}

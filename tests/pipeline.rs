//! Cross-crate pipeline tests: observed graph → dK extraction →
//! construction (every algorithm family) → measured equivalence.

use dk_repro::core::dist::{Dist1K, Dist2K, Dist3K};
use dk_repro::core::generate::rewire::{randomize, RewireOptions};
use dk_repro::core::generate::target::{generate_2k_random, Bootstrap, TargetOptions};
use dk_repro::core::generate::{matching, pseudograph, stochastic};
use dk_repro::graph::builders;
use dk_repro::topologies::hot_like::{hot_like, HotLikeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn every_2k_family_respects_its_guarantee() {
    let observed = builders::karate_club();
    let jdd = Dist2K::from_graph(&observed);
    let mut rng = StdRng::seed_from_u64(1);

    // matching: exact JDD on a simple graph
    let m = matching::generate_2k(&jdd, &mut rng).unwrap().graph;
    assert_eq!(Dist2K::from_graph(&m), jdd);

    // pseudograph: exact before cleanup; cleanup badness is bounded
    let p = pseudograph::generate_2k_multigraph(&jdd, &mut rng).unwrap();
    assert_eq!(p.multigraph.edge_count() as u64, jdd.edges());
    let cleaned = p.simplify();
    assert!(cleaned.badness.total() < observed.edge_count() / 4);

    // stochastic: expected edge total near target (single draw, loose)
    let s = stochastic::generate_2k(&jdd, &mut rng).unwrap().graph;
    let rel = s.edge_count() as f64 / observed.edge_count() as f64;
    assert!((0.5..1.5).contains(&rel), "stochastic m ratio {rel}");

    // randomizing rewiring: exact JDD by construction
    let mut r = observed.clone();
    randomize(&mut r, 2, &RewireOptions::default(), &mut rng);
    assert_eq!(Dist2K::from_graph(&r), jdd);

    // targeting from 1K bootstrap: reaches D2 = 0 on this input
    let (t, stats) = generate_2k_random(
        &jdd,
        Bootstrap::Matching,
        &TargetOptions::default(),
        &mut rng,
    )
    .unwrap();
    assert_eq!(stats.final_distance, 0.0);
    assert_eq!(Dist2K::from_graph(&t), jdd);
}

#[test]
fn inclusion_chain_3k_2k_1k_0k() {
    // Table 1 inclusion: each dK determines all lower distributions.
    for g in [
        builders::karate_club(),
        builders::petersen(),
        builders::grid(6, 6),
        {
            let mut rng = StdRng::seed_from_u64(2);
            hot_like(&HotLikeParams::small(), &mut rng)
        },
    ] {
        let d3 = Dist3K::from_graph(&g);
        let d2 = Dist2K::from_graph(&g);
        let d1 = Dist1K::from_graph(&g);
        assert_eq!(d3.to_2k(), d2);
        assert_eq!(d2.to_1k().unwrap(), d1);
        assert_eq!(d1.to_0k().k_avg(), g.avg_degree());
    }
}

#[test]
fn dk_random_nesting_on_hot() {
    // A 3K-random graph is also a valid 2K-, 1K-, 0K-graph of the
    // original (Figure 2's nesting), and each level adds constraints.
    let mut rng = StdRng::seed_from_u64(3);
    let hot = hot_like(&HotLikeParams::small(), &mut rng);
    let mut g3 = hot.clone();
    randomize(&mut g3, 3, &RewireOptions::default(), &mut rng);
    assert_eq!(Dist3K::from_graph(&g3), Dist3K::from_graph(&hot));
    assert_eq!(Dist2K::from_graph(&g3), Dist2K::from_graph(&hot));
    assert_eq!(Dist1K::from_graph(&g3), Dist1K::from_graph(&hot));
    assert_eq!(g3.edge_count(), hot.edge_count());
}

#[test]
fn orbis_file_roundtrip_through_generation() {
    // dist → text file → dist → graph → dist is the identity on the
    // distribution (for the exact generators).
    let observed = builders::karate_club();
    let jdd = Dist2K::from_graph(&observed);
    let mut buf = Vec::new();
    dk_repro::core::io::write_2k(&jdd, &mut buf).unwrap();
    let restored = dk_repro::core::io::read_2k(buf.as_slice()).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let g = matching::generate_2k(&restored, &mut rng).unwrap().graph;
    assert_eq!(Dist2K::from_graph(&g), jdd);
}

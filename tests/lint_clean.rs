//! Tier-1 gate: the workspace is `dk-lint`-clean.
//!
//! This is the same pass as `cargo run -p dk-lint -- --workspace`
//! (see `LINTS.md` for the rule catalogue), run inside `cargo test` so
//! the determinism rules gate local development, not just CI.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = dk_lint::run_workspace(root).expect("lint scan completes");
    assert!(
        findings.is_empty(),
        "dk-lint found {} problem(s) — run `cargo run -p dk-lint -- --workspace`:\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

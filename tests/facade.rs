//! Facade-equivalence tests: the `Generator` builder must be a *pure
//! re-plumbing* of the legacy free functions — byte-identical output for
//! every supported `(d, method)` cell under the same seed — and every
//! unsupported cell must come back as a typed `GenError::Unsupported`.

use dk_repro::core::dist::{AnyDist, Dist0K, Dist1K, Dist2K, Dist3K};
use dk_repro::core::generate::rewire::{randomize, RewireOptions, SwapBudget};
use dk_repro::core::generate::target::{
    generate_2k_random, generate_3k_random, Bootstrap, TargetOptions,
};
use dk_repro::core::generate::{matching, pseudograph, stochastic};
use dk_repro::core::generate::{GenError, Generated, Generator, Method};
use dk_repro::graph::{builders, Graph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn karate() -> Graph {
    builders::karate_club()
}

/// Short targeting budget: equivalence only needs both sides to run the
/// same protocol, not to converge.
fn quick_target_opts() -> TargetOptions {
    TargetOptions {
        max_attempts: 60_000,
        patience: Some(15_000),
        ..Default::default()
    }
}

fn assert_same(a: &Generated, b: &Generated, cell: &str) {
    assert_eq!(a.graph, b.graph, "graph mismatch in cell {cell}");
    assert_eq!(a.badness, b.badness, "badness mismatch in cell {cell}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every exact-construction cell: facade output equals the legacy
    /// free function called with `StdRng::seed_from_u64(seed)`.
    #[test]
    fn facade_matches_legacy_construction_cells(seed in 0u64..10_000) {
        let g = karate();

        // (0, stochastic)
        let d0 = Dist0K::from_graph(&g);
        let legacy = stochastic::generate_0k(&d0, &mut StdRng::seed_from_u64(seed));
        let facade = Generator::new(Method::Stochastic)
            .seed(seed)
            .build(&AnyDist::D0(d0))
            .unwrap();
        assert_same(&facade, &legacy, "(0, stochastic)");

        // (1, *) and (2, *) for the three distribution-driven families
        let d1 = Dist1K::from_graph(&g);
        let d2 = Dist2K::from_graph(&g);
        for method in [Method::Stochastic, Method::Pseudograph, Method::Matching] {
            let legacy1 = match method {
                Method::Stochastic => stochastic::generate_1k(&d1, &mut StdRng::seed_from_u64(seed)),
                Method::Pseudograph => pseudograph::generate_1k(&d1, &mut StdRng::seed_from_u64(seed)),
                Method::Matching => matching::generate_1k(&d1, &mut StdRng::seed_from_u64(seed)),
                _ => unreachable!(),
            }
            .unwrap();
            let facade1 = Generator::new(method)
                .seed(seed)
                .build(&AnyDist::D1(d1.clone()))
                .unwrap();
            assert_same(&facade1, &legacy1, &format!("(1, {method})"));

            let legacy2 = match method {
                Method::Stochastic => stochastic::generate_2k(&d2, &mut StdRng::seed_from_u64(seed)),
                Method::Pseudograph => pseudograph::generate_2k(&d2, &mut StdRng::seed_from_u64(seed)),
                Method::Matching => matching::generate_2k(&d2, &mut StdRng::seed_from_u64(seed)),
                _ => unreachable!(),
            }
            .unwrap();
            let facade2 = Generator::new(method)
                .seed(seed)
                .build(&AnyDist::D2(d2.clone()))
                .unwrap();
            assert_same(&facade2, &legacy2, &format!("(2, {method})"));
        }
    }

    /// Rewiring cells: facade equals `randomize` on a clone, d = 0..=3.
    #[test]
    fn facade_matches_legacy_rewiring_cells(seed in 0u64..10_000) {
        let g = karate();
        let opts = RewireOptions { budget: SwapBudget::Attempts(500) };
        for d in 0..=3u8 {
            let mut legacy = g.clone();
            randomize(&mut legacy, d, &opts, &mut StdRng::seed_from_u64(seed));
            let facade = Generator::new(Method::Rewiring)
                .reference(&g)
                .rewire_options(opts)
                .seed(seed)
                .build(&AnyDist::from_graph(d, &g).unwrap())
                .unwrap();
            prop_assert_eq!(&facade.graph, &legacy, "(d = {}, rewiring)", d);
        }
    }

    /// Targeting cells, both bootstraps: facade equals the legacy chain.
    #[test]
    fn facade_matches_legacy_targeting_cells(seed in 0u64..1_000) {
        let g = karate();
        let d2 = Dist2K::from_graph(&g);
        let opts = quick_target_opts();
        for bootstrap in [Bootstrap::Matching, Bootstrap::Pseudograph] {
            let (legacy, _) =
                generate_2k_random(&d2, bootstrap, &opts, &mut StdRng::seed_from_u64(seed))
                    .unwrap();
            let facade = Generator::new(Method::Targeting)
                .bootstrap(bootstrap)
                .target_options(opts)
                .seed(seed)
                .build(&AnyDist::D2(d2.clone()))
                .unwrap();
            prop_assert_eq!(&facade.graph, &legacy, "(2, targeting, {:?})", bootstrap);
        }
    }
}

#[test]
fn facade_matches_legacy_3k_targeting() {
    // one seed is enough for the slowest cell (full 1K → 2K → 3K chain)
    let g = karate();
    let d3 = Dist3K::from_graph(&g);
    let opts = quick_target_opts();
    let (legacy, _) = generate_3k_random(
        &d3,
        Bootstrap::Matching,
        &opts,
        &mut StdRng::seed_from_u64(9),
    )
    .unwrap();
    let facade = Generator::new(Method::Targeting)
        .target_options(opts)
        .seed(9)
        .build(&AnyDist::D3(d3))
        .unwrap();
    assert_eq!(facade.graph, legacy);
}

#[test]
fn every_unsupported_cell_is_a_typed_error() {
    let g = karate();
    let mut checked = 0;
    for method in Method::ALL {
        for d in 0..=3u8 {
            if method.supports(d) {
                continue;
            }
            let dist = AnyDist::from_graph(d, &g).unwrap();
            let mut gen = Generator::new(method).seed(1);
            if method.needs_reference() {
                gen = gen.reference(&g);
            }
            match gen.build(&dist) {
                Err(GenError::Unsupported { method: m, d: dd }) => {
                    assert_eq!((m, dd), (method, d));
                }
                other => panic!("cell ({method}, {d}) must be Unsupported, got {other:?}"),
            }
            checked += 1;
        }
    }
    // the capability matrix has exactly seven empty cells:
    // stochastic@3, pseudograph@{0,3}, matching@{0,3}, targeting@{0,1}
    assert_eq!(checked, 7);
}

#[test]
fn capability_matrix_counts() {
    let supported: usize = Method::ALL.iter().map(|m| m.supported_orders().len()).sum();
    // 3 + 2 + 2 + 2 + 4 = 13 supported cells out of 20
    assert_eq!(supported, 13);
}

#[test]
fn parallel_ensemble_identical_to_serial_iterator() {
    let g = karate();
    let dist = AnyDist::from_graph(2, &g).unwrap();
    let gen = Generator::new(Method::Matching).seed(77);
    let serial: Vec<Graph> = gen
        .sample_iter(&dist, 8)
        .map(|r| r.unwrap().graph)
        .collect();
    for threads in [2, 4, 0] {
        let parallel: Vec<Graph> = gen
            .sample_ensemble(&dist, 8, threads)
            .into_iter()
            .map(|r| r.unwrap().graph)
            .collect();
        assert_eq!(serial, parallel, "threads = {threads}");
    }
    // and every replica preserves the JDD (matching is exact)
    let jdd = Dist2K::from_graph(&g);
    for s in &serial {
        assert_eq!(Dist2K::from_graph(s), jdd);
    }
}

//! Statistical tolerance harness for the HyperANF sketch estimators:
//! every sketch estimate is verified against the **exact CSR oracle**
//! (closed-form values on K5/S5/C6, literature values on the karate
//! club, the all-source BFS oracle on generated graphs), with tolerances
//! **derived from the HyperLogLog standard error** `1.04/√2^b`
//! ([`sketch::standard_error`]) — never hand-tuned constants. The
//! working bound is three standard errors; the 10⁴-node acceptance run
//! additionally pins `avg_distance_sketch` at `b = 10` within 5% of the
//! oracle across ≥ 5 seeds.

use dk_repro::graph::csr::CsrGraph;
use dk_repro::graph::{builders, Graph};
use dk_repro::metrics::distance::DistanceDistribution;
use dk_repro::metrics::sketch::{self, hyper_anf_csr, HyperAnf};
use dk_repro::metrics::stream::ExecMode;
use dk_repro::metrics::Analyzer;
use dk_repro::topologies::ba::{barabasi_albert, BaParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The tolerance every comparison uses: three HLL standard errors at the
/// run's register-bit count. 3σ of a well-behaved estimator — loose
/// enough to be stable, tight enough that a broken estimator (wrong
/// α_m, off-by-one rank, missing small-range correction) fails by a
/// wide margin.
fn tol(bits: u32) -> f64 {
    3.0 * sketch::standard_error(bits)
}

fn rel_err(got: f64, want: f64) -> f64 {
    (got - want).abs() / want
}

/// The register-bit sweep the golden tests run: 6 → 39% tolerance,
/// 8 → 19.5%, 10 → 9.75%.
const BITS: [u32; 3] = [6, 8, 10];

const ROUNDS: usize = 64;

fn anf(g: &Graph, bits: u32) -> HyperAnf {
    hyper_anf_csr(&CsrGraph::from_graph(g), bits, ROUNDS, 2)
}

/// Exact N(t) from the oracle histogram: cumulative ordered pairs
/// within distance `t`, self-pairs included — the quantity HyperANF
/// estimates round by round.
fn exact_neighborhood(d: &DistanceDistribution) -> Vec<f64> {
    let mut acc = 0.0;
    d.counts
        .iter()
        .map(|&c| {
            acc += c as f64;
            acc
        })
        .collect()
}

/// Exact effective diameter at quantile `q`, using the same linear
/// interpolation as [`HyperAnf::effective_diameter`] so the comparison
/// isolates estimator error from convention mismatch.
fn exact_effective_diameter(nf: &[f64], q: f64) -> f64 {
    let target = q * nf.last().unwrap();
    if nf[0] >= target {
        return 0.0;
    }
    for t in 1..nf.len() {
        if nf[t] >= target {
            return (t - 1) as f64 + (target - nf[t - 1]) / (nf[t] - nf[t - 1]);
        }
    }
    (nf.len() - 1) as f64
}

// ---------------------------------------------------------------------
// Golden closed-form values: K5, S5, C6
// ---------------------------------------------------------------------

#[test]
fn closed_form_neighborhood_functions_and_mean_distance() {
    // (graph, exact N(t) by hand, exact d̄)
    let cases: Vec<(&str, Graph, Vec<f64>, f64)> = vec![
        // K5: every pair adjacent — N(1) = 25 ordered pairs + selves
        ("K5", builders::complete(5), vec![5.0, 25.0], 1.0),
        // S5 (hub + 5 leaves): hub ball(1) = 6, leaf ball(1) = 2 →
        // N(1) = 6 + 5·2 = 16; everything within 2 hops → N(2) = 36;
        // d̄ = (10·1 + 20·2)/30 = 5/3
        ("S5", builders::star(5), vec![6.0, 16.0, 36.0], 5.0 / 3.0),
        // C6: each node reaches 2 more per hop until the antipode →
        // N = 6, 18, 30, 36; d̄ = (12 + 24 + 18)/30 = 1.8
        ("C6", builders::cycle(6), vec![6.0, 18.0, 30.0, 36.0], 1.8),
    ];
    for (name, g, want_nf, want_mean) in cases {
        // the hand-computed N(t) agrees with the exact oracle histogram
        let oracle = exact_neighborhood(&DistanceDistribution::from_graph_with_threads(&g, 1));
        assert_eq!(oracle, want_nf, "{name}: closed form vs oracle");
        for bits in BITS {
            let a = anf(&g, bits);
            assert!(a.converged, "{name} b={bits}");
            assert_eq!(
                a.neighborhood.len(),
                want_nf.len(),
                "{name} b={bits}: sketch round count tracks the diameter"
            );
            for (t, (&got, &want)) in a.neighborhood.iter().zip(&want_nf).enumerate() {
                assert!(
                    rel_err(got, want) <= tol(bits),
                    "{name} b={bits}: N({t}) = {got}, want {want} ± {}",
                    tol(bits)
                );
            }
            assert!(
                rel_err(a.avg_distance(), want_mean) <= tol(bits),
                "{name} b={bits}: d̄ = {}, want {want_mean}",
                a.avg_distance()
            );
        }
    }
}

// ---------------------------------------------------------------------
// Karate club: literature values
// ---------------------------------------------------------------------

#[test]
fn karate_club_matches_literature_and_oracle() {
    let g = builders::karate_club();
    let exact = DistanceDistribution::from_graph_with_threads(&g, 1);
    // literature anchor (same value analyzer_golden.rs pins): d̄ = 2.4082
    assert!(
        (exact.mean() - 2.4082).abs() < 1e-3,
        "oracle d̄ = {}",
        exact.mean()
    );
    let nf_exact = exact_neighborhood(&exact);
    for bits in BITS {
        let a = anf(&g, bits);
        assert!(a.converged);
        assert!(
            rel_err(a.avg_distance(), exact.mean()) <= tol(bits),
            "b={bits}: d̄ = {}, oracle {}",
            a.avg_distance(),
            exact.mean()
        );
        let eff = a.effective_diameter(0.9);
        let eff_exact = exact_effective_diameter(&nf_exact, 0.9);
        assert!(
            rel_err(eff, eff_exact) <= tol(bits),
            "b={bits}: eff diameter {eff}, oracle {eff_exact}"
        );
        // full-quantile effective diameter reaches the true diameter 5
        assert!(
            (a.effective_diameter(1.0) - 5.0).abs() < 0.5,
            "b={bits}: diameter {}",
            a.effective_diameter(1.0)
        );
    }
}

#[test]
fn karate_distance_distribution_shape() {
    let g = builders::karate_club();
    let exact = DistanceDistribution::from_graph_with_threads(&g, 1);
    let exact_pdf = exact.pdf_positive();
    for bits in BITS {
        let pdf = anf(&g, bits).distance_pdf();
        assert_eq!(
            pdf.len(),
            exact.diameter(),
            "b={bits}: one bin per positive distance"
        );
        let total: f64 = pdf.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9, "b={bits}: Σ = {total}");
        for &(x, p) in &pdf {
            // per-bin absolute tolerance at 3σ: bins are shares of a
            // ratio of two estimates, so absolute (not relative) error
            // is the meaningful bound for near-empty bins
            assert!(
                (p - exact_pdf[x]).abs() <= tol(bits),
                "b={bits}: d({x}) = {p}, exact {}",
                exact_pdf[x]
            );
        }
    }
}

// ---------------------------------------------------------------------
// Register over-provisioning: n < 2^b must degrade gracefully
// ---------------------------------------------------------------------

#[test]
fn max_register_count_degrades_gracefully_on_small_graphs() {
    // b = 16 is 65536 registers per node — far more than these graphs
    // have nodes. The small-range (linear counting) correction must keep
    // every estimate finite and near-exact: no panic, no NaN, no zero
    // denominators anywhere in the derived family.
    for (g, want_mean) in [
        (builders::karate_club(), 2.4082),
        (builders::path(5), 2.0),
        (builders::complete(3), 1.0),
    ] {
        let a = anf(&g, sketch::MAX_SKETCH_BITS);
        assert!(a.converged);
        assert!(a.neighborhood.iter().all(|x| x.is_finite()), "finite N(t)");
        let d = a.avg_distance();
        assert!(d.is_finite());
        // linear-counting regime: error collapses far below 3σ
        assert!(
            rel_err(d, want_mean) < 0.02,
            "n ≪ 2^b is near-exact: d̄ = {d}, want {want_mean}"
        );
        assert!(a.effective_diameter(0.9).is_finite());
        assert!(a
            .distance_pdf()
            .iter()
            .all(|&(_, p)| p.is_finite() && p >= 0.0));
    }
    // degenerate shapes under maximum bits: still no panic, no NaN
    for g in [Graph::new(), Graph::with_nodes(1), Graph::with_nodes(4)] {
        let a = hyper_anf_csr(&CsrGraph::from_graph(&g), sketch::MAX_SKETCH_BITS, 8, 2);
        assert!(a.avg_distance().is_finite());
        assert!(a.effective_diameter(0.9).is_finite());
    }
}

// ---------------------------------------------------------------------
// Analyzer integration: registry metrics against their exact twins
// ---------------------------------------------------------------------

#[test]
fn registry_sketch_metrics_track_exact_twins() {
    let g = builders::karate_club();
    for bits in BITS {
        let rep = Analyzer::new()
            .metric_names("d_avg,diameter,avg_distance_sketch,effective_diameter_sketch")
            .unwrap()
            .sketch_bits(bits)
            .analyze(&g);
        let d_exact = rep.scalar("d_avg").unwrap();
        let d_sketch = rep.scalar("avg_distance_sketch").unwrap();
        assert!(
            rel_err(d_sketch, d_exact) <= tol(bits),
            "b={bits}: sketch {d_sketch} vs exact {d_exact}"
        );
        let eff = rep.scalar("effective_diameter_sketch").unwrap();
        assert!(
            eff > 0.0 && eff <= rep.scalar("diameter").unwrap() + 0.5,
            "b={bits}: eff diameter {eff} bounded by the true diameter"
        );
    }
}

#[test]
fn analyzer_sketch_routes_and_bits_knob_are_deterministic() {
    let g = builders::grid(6, 7);
    let names = "avg_distance_sketch,effective_diameter_sketch,distance_sketch";
    let oracle = Analyzer::new()
        .metric_names(names)
        .unwrap()
        .exec_mode(ExecMode::InMemory)
        .threads(1)
        .analyze(&g);
    // streamed route, any shard/thread count: identical reports
    for shards in [1, 2, 7, 42] {
        for threads in [1, 4] {
            let streamed = Analyzer::new()
                .metric_names(names)
                .unwrap()
                .exec_mode(ExecMode::Streamed)
                .shards(shards)
                .threads(threads)
                .analyze(&g);
            // sketches are shard-count-invariant outright (integer
            // registers + fixed-order sums), so any shard count matches
            assert_eq!(oracle, streamed, "shards = {shards}, threads = {threads}");
            assert_eq!(oracle.to_json(), streamed.to_json());
        }
    }
    // out-of-range builder bits clamp instead of panicking (the CLI
    // rejects; the library stays total)
    let lo = Analyzer::new()
        .metric_names(names)
        .unwrap()
        .sketch_bits(0)
        .analyze(&g);
    let hi = Analyzer::new()
        .metric_names(names)
        .unwrap()
        .sketch_bits(99)
        .analyze(&g);
    assert!(lo.scalar("avg_distance_sketch").unwrap().is_finite());
    assert!(hi.scalar("avg_distance_sketch").unwrap().is_finite());
}

#[test]
fn round_capped_runs_report_undefined_not_truncated_estimates() {
    // P20 has diameter 19: a 2-round cap cannot converge, and a
    // truncated N(0..2) would claim d̄ ≤ 2 — the registry metrics must
    // refuse (Undefined) instead of confidently reporting it
    let g = builders::path(20);
    let names = "avg_distance_sketch,effective_diameter_sketch,distance_sketch";
    let capped = Analyzer::new()
        .metric_names(names)
        .unwrap()
        .sketch_rounds(2)
        .analyze(&g);
    assert_eq!(capped.scalar("avg_distance_sketch"), None);
    assert_eq!(capped.scalar("effective_diameter_sketch"), None);
    assert!(capped.series("distance_sketch").is_none());
    // a budget past the diameter converges and defines the full battery
    let full = Analyzer::new()
        .metric_names(names)
        .unwrap()
        .sketch_rounds(64)
        .analyze(&g);
    assert!(full.scalar("avg_distance_sketch").is_some());
    assert!(full.scalar("effective_diameter_sketch").is_some());
    assert!(full.series("distance_sketch").is_some());
}

// ---------------------------------------------------------------------
// The acceptance run: 10⁴-node BA, b = 10, ≥ 5 seeds, within 5%
// ---------------------------------------------------------------------

#[test]
fn ba_10k_avg_distance_within_five_percent_across_seeds() {
    let bits = 10;
    let n = 10_000;
    let seeds: [u64; 5] = [1, 2, 3, 4, 5];
    let mut worst = 0.0f64;
    for seed in seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(
            &BaParams {
                nodes: n,
                edges_per_node: 2,
                seed_nodes: 3,
            },
            &mut rng,
        );
        let csr = CsrGraph::from_graph(&g);
        let exact = DistanceDistribution::from_csr_with_threads(&csr, 0).mean();
        let a = hyper_anf_csr(&csr, bits, ROUNDS, 0);
        assert!(a.converged, "seed {seed}");
        let rel = rel_err(a.avg_distance(), exact);
        worst = worst.max(rel);
        assert!(
            rel < 0.05,
            "seed {seed}: sketch d̄ = {}, exact {exact}, rel {rel}",
            a.avg_distance()
        );
    }
    // the 5% acceptance bound sits above the 3σ derivation (9.75% at
    // b = 10 per counter) only because summing n correlated counters
    // cancels much of the per-counter noise — record the observed worst
    // case so a future estimator regression is visible in the log
    println!("worst relative error across seeds: {worst:.4}");
}

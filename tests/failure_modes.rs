//! Failure-injection tests: every construction rejects malformed input
//! with a descriptive error instead of looping, panicking, or silently
//! producing a wrong graph.

use dk_repro::core::dist::{Dist1K, Dist2K, Dist3K};
use dk_repro::core::generate::target::{generate_2k_random, Bootstrap, TargetOptions};
use dk_repro::core::generate::{matching, pseudograph, stochastic};
use dk_repro::core::{io, rescale};
use dk_repro::graph::{Graph, GraphError};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng() -> StdRng {
    StdRng::seed_from_u64(1)
}

#[test]
fn odd_degree_sums_rejected_everywhere() {
    let d = Dist1K::from_degree_sequence(&[3, 3, 1]);
    assert!(matches!(
        pseudograph::generate_1k(&d, &mut rng()),
        Err(GraphError::NotGraphical(_))
    ));
    assert!(matches!(
        matching::generate_1k(&d, &mut rng()),
        Err(GraphError::NotGraphical(_))
    ));
    assert!(matches!(
        stochastic::generate_1k(&d, &mut rng()),
        Err(GraphError::NotGraphical(_))
    ));
}

#[test]
fn inconsistent_jdd_rejected_everywhere() {
    // degree-5 class with 1 stub: impossible
    let mut d = Dist2K::default();
    d.counts.insert((5, 7), 1);
    assert!(pseudograph::generate_2k(&d, &mut rng()).is_err());
    assert!(matching::generate_2k(&d, &mut rng()).is_err());
    assert!(stochastic::generate_2k(&d, &mut rng()).is_err());
    assert!(generate_2k_random(
        &d,
        Bootstrap::Matching,
        &TargetOptions::default(),
        &mut rng()
    )
    .is_err());
}

#[test]
fn non_graphical_but_even_sequence_fails_in_construction_not_forever() {
    // [5,5,1,1,1,1]: even sum, fails Erdős–Gallai. Matching must
    // terminate with an error (bounded repair), not spin.
    let d = Dist1K::from_degree_sequence(&[5, 5, 1, 1, 1, 1]);
    // lint: allow(no-wall-clock) — watchdog bound on the failure path; this failure_modes test asserts speed, not results
    let start = std::time::Instant::now();
    let res = matching::generate_1k(&d, &mut rng());
    assert!(res.is_err());
    assert!(
        start.elapsed() < std::time::Duration::from_secs(10),
        "failure must be fast"
    );
}

#[test]
fn impossible_3k_target_respects_patience() {
    // Target the 3K of a *different* degree sequence: unreachable by
    // 2K-preserving moves. The run must stop via patience, not hang.
    let a = dk_repro::graph::builders::karate_club();
    let b = dk_repro::graph::builders::grid(5, 7); // different world
    let target = Dist3K::from_graph(&b);
    let mut g = a.clone();
    let opts = TargetOptions {
        max_attempts: 200_000,
        patience: Some(10_000),
        ..Default::default()
    };
    let stats =
        dk_repro::core::generate::target::target_3k_from_2k(&mut g, &target, &opts, &mut rng());
    assert!(stats.final_distance > 0.0, "cannot possibly reach 0");
    assert!(stats.attempts <= 200_000);
    // 2K (hence degrees) of the original must be intact regardless
    assert_eq!(Dist2K::from_graph(&g), Dist2K::from_graph(&a));
}

#[test]
fn dist_file_parse_errors_carry_context() {
    let err = io::read_2k("1 2 x\n".as_bytes()).unwrap_err();
    match err {
        GraphError::Parse { line, msg } => {
            assert_eq!(line, 1);
            assert!(msg.contains("count"), "{msg}");
        }
        other => panic!("expected parse error, got {other}"),
    }
}

#[test]
fn rescale_rejects_empty_inputs() {
    assert!(rescale::rescale_1k(&Dist1K::default(), 10).is_err());
    assert!(rescale::rescale_2k(&Dist2K::default(), 10).is_err());
}

#[test]
fn generators_survive_extreme_but_valid_inputs() {
    // single edge
    let d = Dist1K::from_degree_sequence(&[1, 1]);
    let g = matching::generate_1k(&d, &mut rng()).unwrap().graph;
    assert_eq!(g.edge_count(), 1);
    // complete graph's JDD forces K_n exactly
    let k5 = dk_repro::graph::builders::complete(5);
    let jdd = Dist2K::from_graph(&k5);
    let g = matching::generate_2k(&jdd, &mut rng()).unwrap().graph;
    assert_eq!(g, k5);
    // a JDD with a single huge star
    let star = dk_repro::graph::builders::star(50);
    let jdd = Dist2K::from_graph(&star);
    let g = matching::generate_2k(&jdd, &mut rng()).unwrap().graph;
    assert_eq!(Dist2K::from_graph(&g), jdd);
}

#[test]
fn graph_io_rejects_truncated_and_corrupt_files() {
    use dk_repro::graph::io::read_edge_list;
    for bad in ["0\n", "0 1 2\n", "nodes\n", "a b\n", "nodes 1\n0 5\n"] {
        assert!(read_edge_list(bad.as_bytes()).is_err(), "{bad:?}");
    }
}

#[test]
fn zero_size_everything() {
    let mut r = rng();
    assert_eq!(
        pseudograph::generate_1k(&Dist1K::default(), &mut r)
            .unwrap()
            .graph
            .node_count(),
        0
    );
    assert_eq!(
        stochastic::generate_0k(&dk_repro::core::dist::Dist0K { nodes: 0, edges: 0 }, &mut r)
            .graph
            .node_count(),
        0
    );
    let empty = Graph::new();
    assert_eq!(Dist3K::from_graph(&empty), Dist3K::default());
}

//! # dk-repro — umbrella crate for the dK-series reproduction
//!
//! Re-exports the workspace crates under one roof so examples and
//! integration tests (and downstream users who want everything) need a
//! single dependency:
//!
//! * [`graph`] — graph substrate (`dk-graph`);
//! * [`linalg`] — spectral solvers (`dk-linalg`);
//! * [`metrics`] — the paper's §2 metric suite (`dk-metrics`);
//! * [`mcmc`] — the incremental-move double-edge-swap engine
//!   (`dk-mcmc`);
//! * [`core`] — dK-distributions, generators, rewiring, exploration
//!   (`dk-core`);
//! * [`topologies`] — evaluation inputs and baselines (`dk-topologies`).
//!
//! See the README for the quickstart and `DESIGN.md` for the system map.

#![forbid(unsafe_code)]

pub use dk_core as core;
pub use dk_graph as graph;
pub use dk_linalg as linalg;
pub use dk_mcmc as mcmc;
pub use dk_metrics as metrics;
pub use dk_topologies as topologies;

//! AS-topology pipeline: the workflow the paper's tooling (Orbis)
//! supported — measure a topology once, ship its dK-distribution as a
//! small text file, and let anyone regenerate statistically equivalent
//! topologies at will (including rescaled ones).
//!
//! ```text
//! cargo run --release --example as_topology_pipeline
//! ```

use dk_repro::core::dist::Dist2K;
use dk_repro::core::generate::pseudograph;
use dk_repro::core::{io as dk_io, rescale};
use dk_repro::metrics::MetricReport;
use dk_repro::topologies::as_like::{skitter_like, AsLikeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. "Measure" an AS topology (synthetic skitter-scale stand-in).
    let params = AsLikeParams {
        nodes: 1500,
        anneal_attempts: 300_000,
        ..AsLikeParams::small()
    };
    let measured = skitter_like(&params, &mut rng);
    println!(
        "measured AS-like topology: n = {}, m = {}",
        measured.node_count(),
        measured.edge_count()
    );

    // 2. Extract the JDD and write it in the Orbis-style text format.
    let jdd = Dist2K::from_graph(&measured);
    let mut file = Vec::new();
    dk_io::write_2k(&jdd, &mut file).expect("serialize 2K");
    println!(
        "2K distribution: {} cells, {} bytes as text",
        jdd.counts.len(),
        file.len()
    );

    // 3. Anyone can now regenerate topologies from the file alone.
    let restored = dk_io::read_2k(file.as_slice()).expect("parse 2K");
    assert_eq!(restored, jdd);
    let synthetic = pseudograph::generate_2k(&restored, &mut rng)
        .expect("consistent")
        .graph;

    println!("\n{:<14}{}", "", MetricReport::table_header());
    println!("{:<14}{}", "measured", MetricReport::compute(&measured).table_row());
    println!("{:<14}{}", "synthetic-2K", MetricReport::compute(&synthetic).table_row());

    // 4. Rescale the JDD to twice the size and generate again — the §6
    //    extension: "skitter at 2× the size".
    let scaled = rescale::rescale_2k(&jdd, 2 * measured.node_count()).expect("rescale");
    let big = pseudograph::generate_2k(&scaled, &mut rng).expect("consistent").graph;
    println!("{:<14}{}", "rescaled-2x", MetricReport::compute(&big).table_row());
    println!(
        "\nrescaled graph: n = {} (target {}), same degree-correlation shape",
        big.node_count(),
        2 * measured.node_count()
    );
}

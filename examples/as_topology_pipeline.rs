//! AS-topology pipeline: the workflow the paper's tooling (Orbis)
//! supported — measure a topology once, ship its dK-distribution as a
//! small text file, and let anyone regenerate statistically equivalent
//! topologies at will (including rescaled ones).
//!
//! The whole pipeline runs through the unified API: [`AnyDist`] holds
//! "a dK-distribution of runtime-chosen d", and the [`Generator`]
//! builder constructs from it — no per-(d, algorithm) dispatch.
//!
//! ```text
//! cargo run --release --example as_topology_pipeline
//! ```

use dk_repro::core::{AnyDist, Generator, Method};
use dk_repro::metrics::MetricReport;
use dk_repro::topologies::as_like::{skitter_like, AsLikeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. "Measure" an AS topology (synthetic skitter-scale stand-in).
    let params = AsLikeParams {
        nodes: 1500,
        anneal_attempts: 300_000,
        ..AsLikeParams::small()
    };
    let measured = skitter_like(&params, &mut rng);
    println!(
        "measured AS-like topology: n = {}, m = {}",
        measured.node_count(),
        measured.edge_count()
    );

    // 2. Extract the JDD and write it in the Orbis-style text format.
    let jdd = AnyDist::from_graph(2, &measured).expect("d ≤ 3");
    let mut file = Vec::new();
    jdd.write(&mut file).expect("serialize 2K");
    println!(
        "2K distribution: {} cells, {} bytes as text",
        jdd.as_2k().expect("order 2").counts.len(),
        file.len()
    );

    // 3. Anyone can now regenerate topologies from the file alone.
    let restored = AnyDist::read(2, file.as_slice()).expect("parse 2K");
    assert_eq!(restored.distance_sq(&jdd), Some(0.0));
    let generator = Generator::new(Method::Pseudograph).seed(7);
    let synthetic = generator.build(&restored).expect("consistent").graph;

    println!("\n{:<14}{}", "", MetricReport::table_header());
    println!(
        "{:<14}{}",
        "measured",
        MetricReport::compute(&measured).table_row()
    );
    println!(
        "{:<14}{}",
        "synthetic-2K",
        MetricReport::compute(&synthetic).table_row()
    );

    // 4. Rescale the JDD to twice the size and generate again — the §6
    //    extension: "skitter at 2× the size".
    let scaled = restored
        .rescale(2 * measured.node_count())
        .expect("rescale");
    let big = generator.seed(8).build(&scaled).expect("consistent").graph;
    println!(
        "{:<14}{}",
        "rescaled-2x",
        MetricReport::compute(&big).table_row()
    );
    println!(
        "\nrescaled graph: n = {} (target {}), same degree-correlation shape",
        big.node_count(),
        2 * measured.node_count()
    );
}

//! dK-space exploration (paper §4.3): visiting the *non-random* corners
//! of a dK-graph class, with and without technology constraints.
//!
//! Demonstrates:
//! * 1K-space: driving the likelihood `S` to both extremes (the Li et
//!   al. experiment showing d = 1 is under-constrained);
//! * 2K-space: driving mean clustering `C̄` and second-order likelihood
//!   `S2` to both extremes while the JDD stays exactly fixed;
//! * constrained rewiring (§6): the same exploration under a
//!   degree-product cap, the paper's router-bandwidth example.
//!
//! ```text
//! cargo run --release --example dk_explorer
//! ```

use dk_repro::core::constraints::DegreeProductCap;
use dk_repro::core::dist::{Dist1K, Dist2K};
use dk_repro::core::explore::{
    explore_1k_likelihood, explore_2k, Direction, ExploreOptions, Objective2K,
};
use dk_repro::core::generate::rewire::{randomize_with, RewireOptions};
use dk_repro::graph::builders;
use dk_repro::metrics::{clustering, jdd, likelihood};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let observed = builders::karate_club();
    let opts = ExploreOptions {
        max_attempts: 200_000,
        patience: Some(40_000),
    };

    // --- 1K-space: likelihood S ---
    println!("1K-space exploration (degree sequence fixed):");
    println!(
        "  original: S = {:.0}, r = {:+.3}",
        likelihood::likelihood_s(&observed),
        jdd::assortativity(&observed)
    );
    for dir in [Direction::Maximize, Direction::Minimize] {
        let mut g = observed.clone();
        let st = explore_1k_likelihood(&mut g, dir, &opts, &mut rng);
        assert_eq!(Dist1K::from_graph(&g), Dist1K::from_graph(&observed));
        println!(
            "  {dir:?}: S = {:.0}, r = {:+.3}",
            st.final_value,
            jdd::assortativity(&g)
        );
    }

    // --- 2K-space: clustering and S2 ---
    println!("\n2K-space exploration (JDD fixed — r cannot move):");
    println!(
        "  original: C̄ = {:.3}, S2 = {:.0}",
        clustering::mean_clustering(&observed),
        likelihood::likelihood_s2(&observed)
    );
    for (objective, label) in [
        (Objective2K::MeanClustering, "C̄"),
        (Objective2K::SecondOrderLikelihood, "S2"),
    ] {
        for dir in [Direction::Maximize, Direction::Minimize] {
            let mut g = observed.clone();
            let st = explore_2k(&mut g, objective, dir, &opts, &mut rng);
            assert_eq!(Dist2K::from_graph(&g), Dist2K::from_graph(&observed));
            println!("  {dir:?} {label}: {:.3}", st.final_value);
        }
    }

    // --- constrained randomization (§6) ---
    println!("\nconstrained 1K-randomization (degree-product cap = 40):");
    let cap = DegreeProductCap { cap: 40 };
    let mut g = observed.clone();
    let stats = randomize_with(&mut g, 1, &RewireOptions::default(), &cap, &mut rng);
    let max_product = g
        .edges()
        .iter()
        .map(|&(u, v)| g.degree(u) as u64 * g.degree(v) as u64)
        .max()
        .unwrap();
    println!(
        "  {} swaps accepted; no *created* edge exceeds the cap; max product now {}",
        stats.accepted, max_product
    );
    println!(
        "  (pre-existing over-cap edges may persist — the constraint vets\n\
         new edges, matching the paper's 'do not accept rewirings violating\n\
         this dependency')"
    );
}

//! Router design space: why degree distributions are not enough for
//! router-level topologies (the paper's HOT argument), and how the
//! dK-series quantifies the gap.
//!
//! Builds a HOT-like router topology, randomizes it at each dK level,
//! and reports (a) the metric drift and (b) the size of each rewiring
//! space (the Table 5 census) — the engineering headroom a designer has
//! at each level of structural constraint.
//!
//! ```text
//! cargo run --release --example router_design_space
//! ```

use dk_repro::core::census::count_initial_rewirings;
use dk_repro::core::generate::rewire::{randomize, verify_randomization, RewireOptions};
use dk_repro::metrics::MetricReport;
use dk_repro::topologies::hot_like::{hot_like, HotLikeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let hot = hot_like(&HotLikeParams::default(), &mut rng);
    println!(
        "HOT-like router topology: n = {}, m = {} (near-tree, disassortative)",
        hot.node_count(),
        hot.edge_count()
    );

    println!("\nrewiring-space census (how many graphs share this dK?):");
    println!(
        "{:>3} {:>14} {:>22}",
        "d", "rewirings", "minus leaf-swap isos"
    );
    for d in 0..=3u8 {
        let c = count_initial_rewirings(&hot, d);
        println!(
            "{d:>3} {:>14} {:>22}",
            c.total,
            c.excluding_obvious_isomorphic
                .map_or("-".into(), |v| v.to_string())
        );
    }

    println!("\nmetric drift under dK-randomizing rewiring:");
    println!("{:<12}{}", "", MetricReport::table_header());
    println!(
        "{:<12}{}",
        "original",
        MetricReport::compute(&hot).table_row()
    );
    for d in 0..=3u8 {
        let mut g = hot.clone();
        let stats = randomize(&mut g, d, &RewireOptions::default(), &mut rng);
        let probe = verify_randomization(&g, d, &RewireOptions::default(), &mut rng);
        println!(
            "{:<12}{}   ({} swaps; converged: {})",
            format!("{d}K-random"),
            MetricReport::compute(&g).table_row(),
            stats.accepted,
            probe.converged(0.05)
        );
    }

    println!(
        "\nReading: at d = 1 the router topology falls apart (distances halve,\n\
         the core inverts); at d = 3 the randomized ensemble is pinned to the\n\
         design — the dK-census above shows there is almost nowhere to move."
    );
}

//! Quickstart: extract a dK-distribution, generate random graphs with the
//! same degree correlations, and see what each level of `d` does and does
//! not reproduce.
//!
//! All construction runs through the unified builder API:
//! [`AnyDist`] holds a dK-distribution of runtime-chosen `d`, and
//! [`Generator`] checks the paper's capability matrix before dispatching
//! to a construction family.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dk_repro::core::{AnyDist, GenError, Generator, Method};
use dk_repro::graph::builders;
use dk_repro::metrics::MetricReport;

fn main() {
    // 1. Take an "observed" graph — Zachary's karate club stands in for a
    //    measured topology.
    let observed = builders::karate_club();
    println!(
        "observed: n = {}, m = {}",
        observed.node_count(),
        observed.edge_count()
    );

    // 2. Extract its dK-distributions into the runtime-d container.
    let dists: Vec<AnyDist> = (1..=3)
        .map(|d| AnyDist::from_graph(d, &observed).expect("d ≤ 3"))
        .collect();
    let (d1, d2, d3) = (&dists[0], &dists[1], &dists[2]);
    println!(
        "1K: {} degree classes | 2K: {} JDD cells | 3K: {} wedge + {} triangle cells",
        d1.as_1k()
            .unwrap()
            .counts
            .iter()
            .filter(|&&c| c > 0)
            .count(),
        d2.as_2k().unwrap().counts.len(),
        d3.as_3k().unwrap().wedges.len(),
        d3.as_3k().unwrap().triangles.len()
    );

    // 3. Construct a random graph at each level. One builder per family;
    //    the capability matrix picks what is possible at each d:
    //    pseudograph covers 1K, matching covers 2K, and 3K needs the
    //    rewiring family seeded with the observed graph.
    let g1 = Generator::new(Method::Pseudograph)
        .seed(7)
        .build(d1)
        .expect("graphical")
        .graph;
    let g2 = Generator::new(Method::Matching)
        .seed(7)
        .build(d2)
        .expect("consistent JDD")
        .graph;
    let g3 = Generator::new(Method::Rewiring)
        .reference(&observed)
        .seed(7)
        .build(d3)
        .expect("rewiring with a reference cannot fail")
        .graph;

    // Impossible cells are typed errors, not panics:
    match Generator::new(Method::Pseudograph).build(d3) {
        Err(GenError::Unsupported { method, d }) => {
            println!("(as expected: {method} cannot build d = {d} — capability matrix)")
        }
        other => panic!("expected a typed capability error, got {other:?}"),
    }

    // 4. Compare the metric battery (Table 2 of the paper).
    println!("\n{:<12}{}", "", MetricReport::table_header());
    for (name, g) in [
        ("observed", &observed),
        ("1K-random", &g1),
        ("2K-random", &g2),
        ("3K-random", &g3),
    ] {
        println!("{name:<12}{}", MetricReport::compute(g).table_row());
    }

    println!(
        "\nNote how r locks in at d = 2 and clustering only matches at d = 3 —\n\
         the paper's convergence story in four rows."
    );
}

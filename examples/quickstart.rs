//! Quickstart: extract a dK-distribution, generate random graphs with the
//! same degree correlations, and see what each level of `d` does and does
//! not reproduce.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dk_repro::core::dist::{Dist1K, Dist2K, Dist3K};
use dk_repro::core::generate::rewire::{randomize, RewireOptions};
use dk_repro::core::generate::{matching, pseudograph};
use dk_repro::graph::builders;
use dk_repro::metrics::MetricReport;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Take an "observed" graph — Zachary's karate club stands in for a
    //    measured topology.
    let observed = builders::karate_club();
    println!("observed: n = {}, m = {}", observed.node_count(), observed.edge_count());

    // 2. Extract its dK-distributions.
    let d1 = Dist1K::from_graph(&observed);
    let d2 = Dist2K::from_graph(&observed);
    let d3 = Dist3K::from_graph(&observed);
    println!(
        "1K: {} degree classes | 2K: {} JDD cells | 3K: {} wedge + {} triangle cells",
        d1.counts.iter().filter(|&&c| c > 0).count(),
        d2.counts.len(),
        d3.wedges.len(),
        d3.triangles.len()
    );

    // 3. Construct random graphs at each level.
    let g1 = pseudograph::generate_1k(&d1, &mut rng).expect("graphical").graph;
    let g2 = matching::generate_2k(&d2, &mut rng).expect("consistent JDD").graph;
    let mut g3 = observed.clone();
    randomize(&mut g3, 3, &RewireOptions::default(), &mut rng);

    // 4. Compare the metric battery (Table 2 of the paper).
    println!("\n{:<12}{}", "", MetricReport::table_header());
    for (name, g) in [
        ("observed", &observed),
        ("1K-random", &g1),
        ("2K-random", &g2),
        ("3K-random", &g3),
    ] {
        println!("{name:<12}{}", MetricReport::compute(g).table_row());
    }

    println!(
        "\nNote how r locks in at d = 2 and clustering only matches at d = 3 —\n\
         the paper's convergence story in four rows."
    );
}

//! Quickstart: extract a dK-distribution, generate random graphs with the
//! same degree correlations, and *analyze what you generate* — the
//! paper's full analyze → extract → generate → re-analyze loop in one
//! file.
//!
//! Both halves run through unified facades: [`Generator`] checks the
//! capability matrix before dispatching to a construction family, and
//! [`Analyzer`] computes a named metric battery over a shared-computation
//! cache (§2 metric definitions; §5.2 GCC convention).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dk_repro::core::{AnyDist, GenError, Generator, Method};
use dk_repro::graph::builders;
use dk_repro::metrics::{Analyzer, MetricTable};

fn main() {
    // 1. Take an "observed" graph — Zachary's karate club stands in for a
    //    measured topology.
    let observed = builders::karate_club();
    println!(
        "observed: n = {}, m = {}",
        observed.node_count(),
        observed.edge_count()
    );

    // 2. Extract its dK-distributions into the runtime-d container.
    let dists: Vec<AnyDist> = (1..=3)
        .map(|d| AnyDist::from_graph(d, &observed).expect("d ≤ 3"))
        .collect();
    let (d1, d2, d3) = (&dists[0], &dists[1], &dists[2]);
    println!(
        "1K: {} degree classes | 2K: {} JDD cells | 3K: {} wedge + {} triangle cells",
        d1.as_1k()
            .unwrap()
            .counts
            .iter()
            .filter(|&&c| c > 0)
            .count(),
        d2.as_2k().unwrap().counts.len(),
        d3.as_3k().unwrap().wedges.len(),
        d3.as_3k().unwrap().triangles.len()
    );

    // 3. Construct a random graph at each level. One builder per family;
    //    the capability matrix picks what is possible at each d:
    //    pseudograph covers 1K, matching covers 2K, and 3K needs the
    //    rewiring family seeded with the observed graph.
    let g1 = Generator::new(Method::Pseudograph)
        .seed(7)
        .build(d1)
        .expect("graphical")
        .graph;
    let g2 = Generator::new(Method::Matching)
        .seed(7)
        .build(d2)
        .expect("consistent JDD")
        .graph;
    let g3 = Generator::new(Method::Rewiring)
        .reference(&observed)
        .seed(7)
        .build(d3)
        .expect("rewiring with a reference cannot fail")
        .graph;

    // Impossible cells are typed errors, not panics:
    match Generator::new(Method::Pseudograph).build(d3) {
        Err(GenError::Unsupported { method, d }) => {
            println!("(as expected: {method} cannot build d = {d} — capability matrix)")
        }
        other => panic!("expected a typed capability error, got {other:?}"),
    }

    // 4. Analyze what we generated: select metrics by name, side-by-side.
    //    Distances and betweenness share one fused all-source traversal
    //    inside the analyzer's cache.
    let analyzer = Analyzer::new()
        .metric_names("k_avg,r,c_mean,d_avg,b_max")
        .expect("registered metrics");
    let observed_report = analyzer.analyze(&observed);
    let mut table = MetricTable::new();
    table.push("observed", observed_report.clone());
    for (name, g) in [("1K-random", &g1), ("2K-random", &g2), ("3K-random", &g3)] {
        table.push(name, analyzer.analyze(g));
    }
    println!("\n{}", table.render());

    // 5. One graph is an anecdote; the paper averages over an ensemble
    //    ("averages over 100 graphs", §5). run_ensemble fans replicas out
    //    in parallel — deterministically — and reports mean ± std.
    let summary = analyzer.run_ensemble(20, 7, |rng| {
        Generator::new(Method::Matching)
            .build_with_rng(d2, rng)
            .expect("consistent JDD")
            .graph
    });
    let r = summary.scalar("r").expect("selected");
    let c = summary.scalar("c_mean").expect("selected");
    println!(
        "2K ensemble (20 replicas): r = {:.3} ± {:.3}, C̄ = {:.3} ± {:.3}",
        r.mean, r.std, c.mean, c.std
    );
    println!(
        "observed:                  r = {:.3}, C̄ = {:.3}",
        observed_report.scalar("r").unwrap(),
        observed_report.scalar("c_mean").unwrap()
    );

    println!(
        "\nNote how r locks in at d = 2 and clustering only matches at d = 3 —\n\
         the paper's convergence story, now with ensemble error bars.\n\
         Machine-readable form: .analyze(&g).to_json() / summary.to_json()"
    );
}

//! Topology zoo: every generator in `dk-topologies` side by side through
//! the paper's metric battery, plus the annotated-2K extension.
//!
//! ```text
//! cargo run --release --example topology_zoo
//! ```

use dk_repro::core::annotate::{generate_annotated_2k, Annotated2K, LabeledGraph};
use dk_repro::metrics::MetricReport;
use dk_repro::topologies::{
    as_like::{skitter_like, AsLikeParams},
    ba::{barabasi_albert, BaParams},
    er,
    glp::{glp, GlpParams},
    hot_like::{hot_like, HotLikeParams},
    ws::{watts_strogatz, WsParams},
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let n = 1000;

    let graphs = vec![
        ("ER", er::gnm(n, 3 * n, &mut rng)),
        (
            "BA",
            barabasi_albert(
                &BaParams {
                    nodes: n,
                    edges_per_node: 3,
                    seed_nodes: 4,
                },
                &mut rng,
            ),
        ),
        (
            "GLP",
            glp(
                &GlpParams {
                    nodes: n,
                    ..Default::default()
                },
                &mut rng,
            ),
        ),
        (
            "WS",
            watts_strogatz(
                &WsParams {
                    nodes: n,
                    lattice_degree: 6,
                    beta: 0.1,
                },
                &mut rng,
            ),
        ),
        (
            "AS-like",
            skitter_like(
                &AsLikeParams {
                    nodes: n,
                    anneal_attempts: 200_000,
                    ..AsLikeParams::small()
                },
                &mut rng,
            ),
        ),
        ("HOT-like", hot_like(&HotLikeParams::default(), &mut rng)),
    ];

    println!("{:<10}{}", "model", MetricReport::table_header());
    for (name, g) in &graphs {
        println!("{name:<10}{}", MetricReport::compute(g).table_row());
    }

    // Annotated 2K (§6): label AS-like edges as "peering" when endpoint
    // degrees are within 2× of each other, else "customer–provider", then
    // regenerate a topology with the same annotated correlations.
    let as_graph = &graphs[4].1;
    let labeled = LabeledGraph::new_with(as_graph.clone(), |u, v| {
        let (a, b) = (as_graph.degree(u) as f64, as_graph.degree(v) as f64);
        if a.max(b) <= 2.0 * a.min(b) {
            1 // peering
        } else {
            0 // customer-provider
        }
    });
    let annotated = Annotated2K::from_graph(&labeled).expect("all edges labeled");
    let labels = annotated.labels();
    println!(
        "\nannotated 2K on AS-like: labels {labels:?}, {} cells",
        annotated.counts.len()
    );
    let regen = generate_annotated_2k(&annotated, &mut rng).expect("consistent");
    let regen_annotated = Annotated2K::from_graph(&regen).expect("labeled output");
    println!(
        "regenerated labeled topology: n = {}, m = {}, label mass preserved within {:.1}%",
        regen.graph.node_count(),
        regen.graph.edge_count(),
        100.0 * (regen_annotated.edges() as f64 - annotated.edges() as f64).abs()
            / annotated.edges() as f64
    );
}
